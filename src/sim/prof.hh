/**
 * @file
 * Self-profiling primitives: hierarchical scoped timers and
 * lock-free per-thread counters (the gem5-stats-flavoured telemetry
 * layer under harness::MetricsRegistry).
 *
 * Two instruments, both compiled in permanently and switched at
 * runtime (prof::setEnabled, flipped on by --metrics-out):
 *
 *  - prof::Counter — a named monotonic counter. Writes go to a
 *    per-thread slot (a relaxed atomic the owning thread alone
 *    stores to), so concurrent SuiteRunner workers never contend;
 *    snapshot() merges the per-thread slots by simple summation,
 *    which is order-independent for integers, so the merged value
 *    is identical for any worker count or schedule.
 *
 *  - prof::ScopedTimer (SER_PROF_SCOPE) — an RAII wall-clock timer.
 *    Timers nest: each thread keeps a path of the scopes it has
 *    open, and a scope's sample is accumulated under the full
 *    hierarchical path ("run.pipeline/cpu.run"), so the profile
 *    reads like a call tree. Call *counts* per path are
 *    deterministic; elapsed seconds are wall-clock observations and
 *    are masked by the metrics determinism checker.
 *
 * Disabled cost: one relaxed atomic load and a branch per
 * instrument site (the counter fast path), or one bool store per
 * scope — the budget DESIGN.md §10 sets is < 2% on
 * BM_TimingPipeline, enforced by the perf_regression_gate ctest.
 *
 * Naming convention: dotted lowercase ("deadness.commits_scanned").
 * Names under "speed." are *simulator-speed observations* — values
 * that legitimately differ across --no-cycle-skip or machine load
 * (tick counts, skipped cycles) — and are value-masked, like
 * wall-clock seconds, when metrics snapshots are byte-compared.
 */

#ifndef SER_SIM_PROF_HH
#define SER_SIM_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ser
{
namespace prof
{

namespace detail
{
extern std::atomic<bool> enabledFlag;
} // namespace detail

/** Master switch. Off by default; BenchOptions flips it on when
 * --metrics-out (or --progress) asks for telemetry. */
void setEnabled(bool on);

inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/** Hard cap on distinct counters (per-thread buffers are fixed-size
 * so writes never reallocate under a reader). Interning beyond it is
 * a simulator bug. */
constexpr std::size_t maxCounters = 256;

/**
 * A named monotonic counter. Cheap to construct (one interning
 * lookup); intended as a function-local static at the instrument
 * site:
 *
 *     static prof::Counter ticks("speed.pipeline.ticks",
 *                                "tick-loop iterations");
 *     ticks.add(n);
 *
 * add() is a no-op while profiling is disabled, but the name is
 * interned at construction either way, so every counter the binary
 * can emit appears (possibly as 0) in every snapshot — snapshots
 * stay structurally identical across runs that exercise different
 * paths at different times.
 */
class Counter
{
  public:
    explicit Counter(std::string_view name,
                     std::string_view desc = "");

    void add(std::uint64_t v);
    void operator+=(std::uint64_t v) { add(v); }
    void operator++() { add(1); }

    std::size_t id() const { return _id; }

  private:
    std::size_t _id;
};

/**
 * RAII hierarchical timer; prefer the SER_PROF_SCOPE macro. While
 * profiling is enabled the scope's name is appended to the calling
 * thread's open-scope path and one {calls, seconds} sample is
 * accumulated under the full path at destruction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string_view name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    bool _active;
    std::size_t _parentLen = 0;
    std::chrono::steady_clock::time_point _start;
};

struct CounterSample
{
    std::string name;
    std::string desc;
    std::uint64_t value = 0;
};

struct ScopeSample
{
    std::string path;
    std::uint64_t calls = 0;
    double seconds = 0.0;
};

/** Every interned counter and every scope path seen so far, sorted
 * by name/path (so emission order never depends on interning order,
 * which can vary with worker scheduling). */
struct Snapshot
{
    std::vector<CounterSample> counters;
    std::vector<ScopeSample> scopes;
};

/**
 * Merge the retired-thread totals with every live thread's buffer
 * (relaxed loads — each slot has a single writer) and the scope
 * accumulator. Safe to call from any thread at any time; a sample
 * racing the snapshot lands in this snapshot or the next, never
 * torn.
 */
Snapshot snapshot();

/** Zero every counter and drop every scope sample (tests). Interned
 * counter names survive — they are the schema, not the data. */
void reset();

} // namespace prof
} // namespace ser

#define SER_PROF_CONCAT_(a, b) a##b
#define SER_PROF_CONCAT(a, b) SER_PROF_CONCAT_(a, b)

/** Time the enclosing scope under the hierarchical path `name`. */
#define SER_PROF_SCOPE(name)                                           \
    ::ser::prof::ScopedTimer SER_PROF_CONCAT(_ser_prof_scope_,         \
                                             __LINE__)(name)

#endif // SER_SIM_PROF_HH
