#include "trace_event.hh"

#include "json.hh"
#include "logging.hh"

namespace ser
{
namespace trace
{

namespace
{

void
writeArg(json::JsonWriter &jw, const Arg &arg)
{
    jw.key(arg.key);
    switch (arg.kind) {
      case Arg::Kind::Uint: jw.value(arg.uintValue); break;
      case Arg::Kind::Int: jw.value(arg.intValue); break;
      case Arg::Kind::Real: jw.value(arg.realValue); break;
      case Arg::Kind::Str: jw.value(arg.strValue); break;
    }
}

} // namespace

TraceWriter::TrackState &
TraceWriter::track(std::uint32_t tid)
{
    return _tracks[tid];
}

void
TraceWriter::writeEvent(char ph, std::uint32_t tid, std::uint64_t ts,
                        std::string_view name, Args args,
                        bool with_args)
{
    if (_events)
        _buf << ",\n";
    ++_events;
    json::JsonWriter jw(_buf, 0);
    jw.beginObject();
    jw.kv("name", name);
    jw.kv("ph", std::string_view(&ph, 1));
    jw.kv("ts", ts);
    jw.kv("pid", _pid);
    jw.kv("tid", tid);
    if (with_args) {
        jw.key("args");
        jw.beginObject();
        for (const Arg &arg : args)
            writeArg(jw, arg);
        jw.endObject();
    }
    jw.endObject();
}

void
TraceWriter::processName(std::string_view name)
{
    if (_events)
        _buf << ",\n";
    ++_events;
    json::JsonWriter jw(_buf, 0);
    jw.beginObject();
    jw.kv("name", "process_name");
    jw.kv("ph", "M");
    jw.kv("pid", _pid);
    jw.kv("tid", 0);
    jw.key("args").beginObject().kv("name", name).endObject();
    jw.endObject();
}

void
TraceWriter::threadName(std::uint32_t tid, std::string_view name)
{
    if (_events)
        _buf << ",\n";
    ++_events;
    json::JsonWriter jw(_buf, 0);
    jw.beginObject();
    jw.kv("name", "thread_name");
    jw.kv("ph", "M");
    jw.kv("pid", _pid);
    jw.kv("tid", tid);
    jw.key("args").beginObject().kv("name", name).endObject();
    jw.endObject();
}

void
TraceWriter::begin(std::uint32_t tid, std::string_view name,
                   std::uint64_t ts, Args args)
{
    TrackState &t = track(tid);
    if (t.sawEvent && ts < t.lastTs)
        SER_PANIC("trace: B '{}' at ts {} before track {}'s last "
                  "event at {}", name, ts, tid, t.lastTs);
    t.lastTs = ts;
    t.sawEvent = true;
    ++t.openSlices;
    writeEvent('B', tid, ts, name, args, args.size() != 0);
}

void
TraceWriter::end(std::uint32_t tid, std::uint64_t ts)
{
    TrackState &t = track(tid);
    if (!t.openSlices)
        SER_PANIC("trace: E on track {} with no open slice", tid);
    if (ts < t.lastTs)
        SER_PANIC("trace: E at ts {} before track {}'s last event "
                  "at {}", ts, tid, t.lastTs);
    t.lastTs = ts;
    --t.openSlices;
    writeEvent('E', tid, ts, "", {}, false);
}

void
TraceWriter::instant(std::uint32_t tid, std::string_view name,
                     std::uint64_t ts, Args args)
{
    TrackState &t = track(tid);
    if (t.sawEvent && ts < t.lastTs)
        SER_PANIC("trace: instant '{}' at ts {} before track {}'s "
                  "last event at {}", name, ts, tid, t.lastTs);
    t.lastTs = ts;
    t.sawEvent = true;
    // "s":"t": thread-scoped instant (a small caret on the track).
    if (_events)
        _buf << ",\n";
    ++_events;
    json::JsonWriter jw(_buf, 0);
    jw.beginObject();
    jw.kv("name", name);
    jw.kv("ph", "i");
    jw.kv("s", "t");
    jw.kv("ts", ts);
    jw.kv("pid", _pid);
    jw.kv("tid", tid);
    if (args.size()) {
        jw.key("args");
        jw.beginObject();
        for (const Arg &arg : args)
            writeArg(jw, arg);
        jw.endObject();
    }
    jw.endObject();
}

void
TraceWriter::counter(std::string_view name, std::uint64_t ts,
                     Args args)
{
    // Counters are process-scoped; tid 0 keeps them off the slice
    // tracks.
    writeEvent('C', 0, ts, name, args, true);
}

bool
TraceWriter::balanced() const
{
    for (const auto &t : _tracks)
        if (t.second.openSlices)
            return false;
    return true;
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<const std::string *> &fragments)
{
    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    for (const std::string *fragment : fragments) {
        if (!fragment || fragment->empty())
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << *fragment;
    }
    os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<std::string> &fragments)
{
    std::vector<const std::string *> refs;
    refs.reserve(fragments.size());
    for (const std::string &fragment : fragments)
        refs.push_back(&fragment);
    writeChromeTrace(os, refs);
}

} // namespace trace
} // namespace ser
