/**
 * @file
 * A tiny key=value configuration/parameter store.
 *
 * Used by examples and benches to override simulator parameters from
 * the command line without a heavyweight options library. Keys are
 * dotted strings ("cpu.iq_entries"); values are parsed on demand.
 */

#ifndef SER_SIM_CONFIG_HH
#define SER_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ser
{

/** String-keyed parameter store with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value" tokens (e.g. from argv); tokens without '='
     * are collected as positional arguments. */
    void parseArgs(int argc, char **argv);

    /** Parse a single "key=value" string; returns false if malformed. */
    bool parseAssignment(const std::string &token);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed getters; fatal error on unparsable values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

    /** All key=value pairs, sorted by key (for reproducibility logs). */
    std::vector<std::pair<std::string, std::string>> items() const;

  private:
    std::map<std::string, std::string> _values;
    std::vector<std::string> _positional;
};

} // namespace ser

#endif // SER_SIM_CONFIG_HH
