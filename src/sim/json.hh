/**
 * @file
 * A minimal JSON layer for run artifacts.
 *
 * Two halves:
 *  - JsonWriter: a streaming, comma-and-indent-managing emitter used
 *    to write run manifests and stats trees. Strings are escaped per
 *    RFC 8259; non-finite numbers (which JSON cannot represent) are
 *    emitted as null so the output always parses.
 *  - JsonValue / parseJson: a small recursive-descent parser used by
 *    the manifest checker and the round-trip tests. It accepts
 *    exactly the documents the writer produces (standard JSON).
 *
 * Neither half aims to be a general-purpose JSON library; they exist
 * so every experiment can leave behind machine-readable, diffable
 * artifacts without an external dependency.
 */

#ifndef SER_SIM_JSON_HH
#define SER_SIM_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ser
{
namespace json
{

/** Escape a string for embedding in a JSON document (no quotes). */
std::string escape(std::string_view s);

/** Streaming JSON emitter with automatic commas and indentation.
 * An indent_step of 0 produces compact single-line output (JSONL). */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent_step = 2)
        : _os(os), _indentStep(indent_step)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit the key of the next member (inside an object). */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(const std::string &v)
    {
        return value(std::string_view(v));
    }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /** Splice an already-serialized JSON value verbatim (the caller
     * guarantees it is valid JSON; its own indentation is kept). */
    JsonWriter &rawValue(std::string_view json_text);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void beforeValue();
    void newline();

    std::ostream &_os;
    int _indentStep;
    int _depth = 0;
    /** Per-depth: whether a value has already been written there. */
    std::vector<bool> _hasValue{false};
    bool _pendingKey = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;
};

/**
 * Parse a complete JSON document. Returns false (and sets *err when
 * given) on malformed input, including trailing garbage.
 */
bool parseJson(std::string_view text, JsonValue *out,
               std::string *err = nullptr);

} // namespace json
} // namespace ser

#endif // SER_SIM_JSON_HH
