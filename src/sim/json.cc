#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace ser
{
namespace json
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    if (_indentStep <= 0)
        return;  // compact mode: everything on one line
    _os << "\n" << std::string(
        static_cast<std::size_t>(_depth * _indentStep), ' ');
}

void
JsonWriter::beforeValue()
{
    if (_pendingKey) {
        _pendingKey = false;
        return;
    }
    if (_hasValue.back())
        _os << ",";
    if (_depth > 0)
        newline();
    _hasValue.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    _os << "{";
    ++_depth;
    _hasValue.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool had = _hasValue.back();
    _hasValue.pop_back();
    --_depth;
    if (had)
        newline();
    _os << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    _os << "[";
    ++_depth;
    _hasValue.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool had = _hasValue.back();
    _hasValue.pop_back();
    --_depth;
    if (had)
        newline();
    _os << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (_pendingKey)
        SER_PANIC("json: key('{}') while a key is already pending",
                  name);
    beforeValue();
    _os << "\"" << escape(name) << "\": ";
    _pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    _os << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return nullValue();
    beforeValue();
    // Round-trippable, locale-independent formatting; integers keep
    // an integral look for diffability.
    char buf[40];
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    _os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    _os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    _os << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json_text)
{
    beforeValue();
    _os << json_text;
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : _text(text), _err(err)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (_err && _err->empty())
            *_err = msg + " (at offset " + std::to_string(_pos) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (_depth > maxDepth)
            return fail("nesting too deep");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': out->kind = JsonValue::Kind::String;
                    return parseString(&out->string);
          case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null") || fail("bad literal");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Object;
        ++_pos;  // '{'
        ++_depth;
        skipWs();
        if (consume('}')) {
            --_depth;
            return true;
        }
        while (true) {
            skipWs();
            std::string name;
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key");
            if (!parseString(&name))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue member;
            if (!parseValue(&member))
                return false;
            out->object.emplace(std::move(name), std::move(member));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                --_depth;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Array;
        ++_pos;  // '['
        ++_depth;
        skipWs();
        if (consume(']')) {
            --_depth;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!parseValue(&element))
                return false;
            out->array.push_back(std::move(element));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                --_depth;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        ++_pos;  // '"'
        std::string s;
        while (true) {
            if (_pos >= _text.size())
                return fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                break;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (_pos >= _text.size())
                return fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the code point (BMP only — the
                // writer never emits surrogate pairs).
                if (code < 0x80) {
                    s += static_cast<char>(code);
                } else if (code < 0x800) {
                    s += static_cast<char>(0xC0 | (code >> 6));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    s += static_cast<char>(0xE0 | (code >> 12));
                    s += static_cast<char>(0x80 |
                                           ((code >> 6) & 0x3F));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("bad escape character");
            }
        }
        *out = std::move(s);
        return true;
    }

    bool
    parseNumber(JsonValue *out)
    {
        std::size_t start = _pos;
        if (consume('-')) {
        }
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            return fail("expected a value");
        std::string tok(_text.substr(start, _pos - start));
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number '" + tok + "'");
        out->kind = JsonValue::Kind::Number;
        out->number = v;
        return true;
    }

    static constexpr int maxDepth = 64;

    std::string_view _text;
    std::string *_err;
    std::size_t _pos = 0;
    int _depth = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue *out, std::string *err)
{
    Parser p(text, err);
    return p.parse(out);
}

} // namespace json
} // namespace ser
