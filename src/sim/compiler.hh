/**
 * @file
 * Small portability shims for compiler-specific hints used on the
 * hot paths (SoA fold loops, flat-hash probes). Everything here must
 * degrade to a no-op on compilers that lack the extension.
 */

#ifndef SER_SIM_COMPILER_HH
#define SER_SIM_COMPILER_HH

/** C99 restrict for C++: the pointer is the only way the function
 * body reaches that object. Lets the optimizer keep SoA column
 * pointers in registers across stores through sibling columns. */
#if defined(__GNUC__) || defined(__clang__)
#define SER_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define SER_RESTRICT __restrict
#else
#define SER_RESTRICT
#endif

/** Force inlining of small helpers the compiler's size heuristics
 * would otherwise keep out of line on the per-incarnation path. */
#if defined(__GNUC__) || defined(__clang__)
#define SER_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SER_ALWAYS_INLINE inline
#endif

/** Branch-weight hints for guards that are cold by construction
 * (window-straddling records, hash-table growth, slow-path exits). */
#if defined(__GNUC__) || defined(__clang__)
#define SER_LIKELY(x) __builtin_expect(!!(x), 1)
#define SER_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define SER_LIKELY(x) (x)
#define SER_UNLIKELY(x) (x)
#endif

#endif // SER_SIM_COMPILER_HH
