#include "config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "logging.hh"

namespace ser
{

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (!parseAssignment(token))
            _positional.push_back(token);
    }
}

bool
Config::parseAssignment(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(token.substr(0, eq), token.substr(eq + 1));
    return true;
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = _values.find(key);
    return it == _values.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (!end || *end != '\0')
        SER_FATAL("config: {} = '{}' is not an integer", key,
                  it->second);
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (!end || *end != '\0')
        SER_FATAL("config: {} = '{}' is not an unsigned integer", key,
                  it->second);
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (!end || *end != '\0')
        SER_FATAL("config: {} = '{}' is not a number", key, it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    SER_FATAL("config: {} = '{}' is not a boolean", key, it->second);
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    return {_values.begin(), _values.end()};
}

} // namespace ser
