/**
 * @file
 * Logging and error-reporting helpers for the simulator.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for user errors such as bad configuration (clean
 * exit), warn()/inform() for status messages that never stop the run.
 */

#ifndef SER_SIM_LOGGING_HH
#define SER_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ser
{

namespace logging_detail
{

/** Format a brace-free printf-lite message: each "{}" in fmt is
 * replaced by the next argument, streamed via operator<<. */
inline void
formatTo(std::ostream &os, std::string_view fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
formatTo(std::ostream &os, std::string_view fmt, const T &first,
         const Rest &...rest)
{
    auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt;
        return;
    }
    os << fmt.substr(0, pos) << first;
    formatTo(os, fmt.substr(pos + 2), rest...);
}

template <typename... Args>
std::string
format(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    formatTo(os, fmt, args...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** When true, warn()/inform() output is suppressed (used by tests). */
extern bool quiet;

/** The process-wide stderr line lock. Writers that emit a whole
 * line (warn/inform, debug trace prints) hold it for the line so
 * concurrent SuiteRunner workers never interleave characters. */
std::mutex &stderrLock();

} // namespace logging_detail

/** Suppress or restore warn()/inform() output. */
void setLogQuiet(bool quiet);

} // namespace ser

/** Report an internal simulator bug and abort. */
#define SER_PANIC(...)                                                 \
    ::ser::logging_detail::panicImpl(                                  \
        __FILE__, __LINE__, ::ser::logging_detail::format(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define SER_FATAL(...)                                                 \
    ::ser::logging_detail::fatalImpl(                                  \
        __FILE__, __LINE__, ::ser::logging_detail::format(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define SER_WARN(...)                                                  \
    ::ser::logging_detail::warnImpl(                                   \
        ::ser::logging_detail::format(__VA_ARGS__))

/** Report normal operating status. */
#define SER_INFORM(...)                                                \
    ::ser::logging_detail::informImpl(                                 \
        ::ser::logging_detail::format(__VA_ARGS__))

#endif // SER_SIM_LOGGING_HH
