#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace ser
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

Rng
Rng::keyed(std::uint64_t seed_value, std::uint64_t index)
{
    // Whiten the seed, fold the counter in, and whiten again so that
    // nearby (seed, index) pairs land on unrelated xoshiro states.
    std::uint64_t x = seed_value;
    std::uint64_t key = splitmix64(x);
    x = key ^ index;
    key = splitmix64(x);
    return Rng(key);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    if (bound == 0)
        SER_PANIC("Rng::range with zero bound");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::rangeInclusive(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        SER_PANIC("Rng::rangeInclusive with lo {} > hi {}", lo, hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(range(span));
}

double
Rng::uniform()
{
    // 53 high-quality bits into a double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::skewed(std::uint64_t n, double decay)
{
    if (n == 0)
        SER_PANIC("Rng::skewed with zero n");
    if (decay <= 0.0 || decay >= 1.0)
        return range(n);
    // Inverse-CDF sampling of a truncated geometric distribution.
    double u = uniform();
    double denom = 1.0 - std::pow(decay, static_cast<double>(n));
    double val = std::log(1.0 - u * denom) / std::log(decay);
    auto idx = static_cast<std::uint64_t>(val);
    return idx >= n ? n - 1 : idx;
}

} // namespace ser
