/**
 * @file
 * A bounded lock-free multi-producer/multi-consumer queue (the
 * joernblog atomic_queue / Vyukov idiom): a power-of-two ring where
 * every cell carries its own sequence counter, so producers and
 * consumers claim slots with one fetch_add each and never touch a
 * mutex or condition variable. Slot handoff is acquire/release on
 * the per-cell sequence, which makes the element write itself
 * data-race-free (tests/test_mpmc.cc stresses N producers x M
 * consumers under SER_SANITIZE=thread).
 *
 * This is the dispatch substrate for two users:
 *
 *  - ser::parallelFor feeds worker shards their indices through it
 *    instead of the old shared claim counter, so the sweep fan-out
 *    and the daemon's request producers share one proven primitive;
 *  - harness::SweepService (daemon mode) schedules cold-miss sweep
 *    jobs from the HTTP poll thread onto its resident worker pool.
 *
 * Semantics:
 *  - tryPush/tryPop never block; they fail when the ring is full /
 *    empty *at the claimed slot* (the classic bounded-queue
 *    contract).
 *  - push/pop spin with a yield backoff. pop() additionally returns
 *    false once the queue is closed *and* drained, which is how
 *    worker pools shut down without a sentinel element per worker.
 *  - close() is sticky; push/tryPush after close are a programming
 *    error (asserted in debug builds, dropped otherwise).
 */

#ifndef SER_SIM_MPMC_QUEUE_HH
#define SER_SIM_MPMC_QUEUE_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace ser
{

template <typename T>
class MpmcQueue
{
  public:
    /** Capacity is rounded up to a power of two (minimum 2). */
    explicit MpmcQueue(std::size_t capacity)
    {
        std::size_t size = 2;
        while (size < capacity)
            size <<= 1;
        _mask = size - 1;
        _cells = std::make_unique<Cell[]>(size);
        for (std::size_t i = 0; i < size; ++i)
            _cells[i].seq.store(i, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    std::size_t capacity() const { return _mask + 1; }

    /** Non-blocking enqueue; false when the ring is full, and the
     * argument is NOT consumed (an rvalue is only moved from on
     * success), so callers can retry the same value — push()'s spin
     * loop depends on this. */
    bool tryPush(T &&value) { return tryPushRef(value); }
    bool tryPush(const T &value)
    {
        T copy(value);
        return tryPushRef(copy);
    }

    /** Non-blocking dequeue; false when the ring is empty. */
    bool tryPop(T *out)
    {
        std::size_t pos = _head.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = _cells[pos & _mask];
            std::size_t seq = cell.seq.load(std::memory_order_acquire);
            std::intptr_t diff =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1);
            if (diff == 0) {
                if (_head.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    *out = std::move(cell.value);
                    // Publish the slot for the producer one lap out.
                    cell.seq.store(pos + _mask + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // slot not yet produced: empty
            } else {
                pos = _head.load(std::memory_order_relaxed);
            }
        }
    }

    /** Blocking enqueue (spin + yield while the ring is full). */
    void push(T value)
    {
        Backoff backoff;
        while (!tryPushRef(value))
            backoff.pause();
    }

    /**
     * Blocking dequeue: waits for an element, returns false only
     * once close() has been called and every element is drained —
     * the worker-pool exit condition.
     */
    bool pop(T *out)
    {
        Backoff backoff;
        for (;;) {
            if (tryPop(out))
                return true;
            if (_closed.load(std::memory_order_acquire)) {
                // Raced close vs a straggling producer: one last
                // look after seeing the closed flag.
                return tryPop(out);
            }
            backoff.pause();
        }
    }

    /** Sticky: wakes every blocked pop() once the ring drains. */
    void close() { _closed.store(true, std::memory_order_release); }
    bool closed() const
    {
        return _closed.load(std::memory_order_acquire);
    }

  private:
    /** The one enqueue path: moves from 'value' only after winning a
     * slot, leaving it intact on a full ring. (The earlier
     * by-value tryPush consumed its argument even on failure, so
     * push()'s retry loop would enqueue a moved-from element once
     * the ring ever filled — harmless for trivially-copyable
     * indices, fatal for std::function jobs.) */
    bool tryPushRef(T &value)
    {
        assert(!_closed.load(std::memory_order_relaxed) &&
               "push after close");
        std::size_t pos = _tail.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = _cells[pos & _mask];
            std::size_t seq = cell.seq.load(std::memory_order_acquire);
            std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                // The slot is free for this generation: claim it.
                if (_tail.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = std::move(value);
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // a full lap behind: ring is full
            } else {
                pos = _tail.load(std::memory_order_relaxed);
            }
        }
    }

    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    /** Brief spin, then yield: latency for the hot handoff, no
     * busy-burn when a queue stays full/empty for a while. */
    struct Backoff
    {
        unsigned spins = 0;
        void pause()
        {
            if (++spins < 64)
                return;
            std::this_thread::yield();
        }
    };

    std::unique_ptr<Cell[]> _cells;
    std::size_t _mask = 0;
    alignas(64) std::atomic<std::size_t> _tail{0};
    alignas(64) std::atomic<std::size_t> _head{0};
    alignas(64) std::atomic<bool> _closed{false};
};

} // namespace ser

#endif // SER_SIM_MPMC_QUEUE_HH
