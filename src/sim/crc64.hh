/**
 * @file
 * CRC-64 integrity checksums for persistent cache blobs.
 *
 * The variant is CRC-64/XZ (ECMA-182 polynomial, reflected, init and
 * xorout ~0) — the same parameterization the joernblog crc64 and the
 * xz container use, so blobs written here are checkable with any
 * standard CRC-64/XZ tool. The check value (CRC of the ASCII bytes
 * "123456789") is 0x995DC9BBDF1939FA; tests/test_disk_cache.cc pins
 * it along with further known-answer vectors.
 *
 * The update function chains zlib-style: pass 0 for the first call
 * and the previous return value to continue — the pre/post
 * inversions compose so that chained calls equal one call over the
 * concatenation.
 */

#ifndef SER_SIM_CRC64_HH
#define SER_SIM_CRC64_HH

#include <cstddef>
#include <cstdint>

namespace ser
{

/** CRC-64/XZ over [data, data + len), chained from 'crc' (use 0 to
 * start). */
std::uint64_t crc64(std::uint64_t crc, const void *data,
                    std::size_t len);

} // namespace ser

#endif // SER_SIM_CRC64_HH
