/**
 * @file
 * A set-associative cache model with true-LRU replacement.
 *
 * Timing-only: the cache tracks tags, not data (the functional
 * executor owns the data). The pipeline asks the CacheHierarchy for
 * an access latency; individual Cache objects answer hit/miss and
 * maintain replacement state.
 */

#ifndef SER_MEMORY_CACHE_HH
#define SER_MEMORY_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ser
{
namespace memory
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 8 * 1024;
    std::uint64_t lineBytes = 64;
    unsigned assoc = 4;
    unsigned hitLatency = 2;  ///< cycles, load-to-use at this level
};

/** One level of tag storage with LRU replacement. */
class Cache : public statistics::StatGroup
{
  public:
    Cache(const CacheParams &params,
          statistics::StatGroup *parent = nullptr);

    /**
     * Look up 'addr'; on a hit, refresh LRU state. Does not allocate
     * on a miss — call fill() for that (the hierarchy decides fill
     * policy). Returns true on hit.
     */
    bool access(std::uint64_t addr);

    /** Tag check with no side effects (no LRU update, no stats). */
    bool probe(std::uint64_t addr) const;

    /** Insert the line holding 'addr', evicting the LRU way. */
    void fill(std::uint64_t addr);

    /** Drop every line. */
    void invalidateAll();

    const CacheParams &params() const { return _params; }
    std::uint64_t numSets() const { return _numSets; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(statHits.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(statMisses.value());
    }
    double missRate() const;

  private:
    /** Deliberately trivial (no member initializers): line storage is
     * allocated uninitialized and a set's lines are first zeroed when
     * its _touched bit is set. A short run over a large cache (the
     * paper's 10MB L2) then never pays for the cold capacity. */
    struct Line
    {
        std::uint64_t tag;
        std::uint64_t lruStamp;
        bool valid;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr / _params.lineBytes;
    }
    std::uint64_t setIndex(std::uint64_t addr) const
    {
        return lineAddr(addr) % _numSets;
    }
    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return lineAddr(addr) / _numSets;
    }

    /** The set's lines, zero-initializing them on first touch. */
    Line *setLines(std::uint64_t set);

    bool touched(std::uint64_t set) const
    {
        return (_touched[set >> 6] >>
                (set & 63)) & 1;
    }

    CacheParams _params;
    std::uint64_t _numSets;
    /** numSets * assoc, set-major; garbage until touched. */
    std::unique_ptr<Line[]> _lines;
    /** One bit per set: its lines have been initialized since the
     * last invalidateAll(). An untouched set is all-invalid. */
    std::vector<std::uint64_t> _touched;
    std::uint64_t _stamp = 0;

    statistics::Scalar statHits;
    statistics::Scalar statMisses;
    statistics::Scalar statFills;
};

} // namespace memory
} // namespace ser

#endif // SER_MEMORY_CACHE_HH
