/**
 * @file
 * A set-associative cache model with true-LRU replacement.
 *
 * Timing-only: the cache tracks tags, not data (the functional
 * executor owns the data). The pipeline asks the CacheHierarchy for
 * an access latency; individual Cache objects answer hit/miss and
 * maintain replacement state.
 */

#ifndef SER_MEMORY_CACHE_HH
#define SER_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ser
{
namespace memory
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 8 * 1024;
    std::uint64_t lineBytes = 64;
    unsigned assoc = 4;
    unsigned hitLatency = 2;  ///< cycles, load-to-use at this level
};

/** One level of tag storage with LRU replacement. */
class Cache : public statistics::StatGroup
{
  public:
    Cache(const CacheParams &params,
          statistics::StatGroup *parent = nullptr);

    /**
     * Look up 'addr'; on a hit, refresh LRU state. Does not allocate
     * on a miss — call fill() for that (the hierarchy decides fill
     * policy). Returns true on hit.
     */
    bool access(std::uint64_t addr);

    /** Tag check with no side effects (no LRU update, no stats). */
    bool probe(std::uint64_t addr) const;

    /** Insert the line holding 'addr', evicting the LRU way. */
    void fill(std::uint64_t addr);

    /** Drop every line. */
    void invalidateAll();

    const CacheParams &params() const { return _params; }
    std::uint64_t numSets() const { return _numSets; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(statHits.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(statMisses.value());
    }
    double missRate() const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr / _params.lineBytes;
    }
    std::uint64_t setIndex(std::uint64_t addr) const
    {
        return lineAddr(addr) % _numSets;
    }
    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return lineAddr(addr) / _numSets;
    }

    CacheParams _params;
    std::uint64_t _numSets;
    std::vector<Line> _lines;  ///< numSets * assoc, set-major
    std::uint64_t _stamp = 0;

    statistics::Scalar statHits;
    statistics::Scalar statMisses;
    statistics::Scalar statFills;
};

} // namespace memory
} // namespace ser

#endif // SER_MEMORY_CACHE_HH
