#include "hierarchy.hh"

#include "sim/debug.hh"

namespace ser
{
namespace memory
{

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L0: return "L0";
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::Memory: return "memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               statistics::StatGroup *parent)
    : StatGroup("dcache", parent), _params(params),
      _l0(std::make_unique<Cache>(params.l0, this)),
      _l1(std::make_unique<Cache>(params.l1, this)),
      _l2(std::make_unique<Cache>(params.l2, this)),
      statAccesses(this, "accesses", "demand accesses"),
      statServedInflight(this, "served_inflight",
                         "secondary misses on in-flight lines"),
      statServedL0(this, "served_l0", "demand accesses served by L0"),
      statServedL1(this, "served_l1", "demand accesses served by L1"),
      statServedL2(this, "served_l2", "demand accesses served by L2"),
      statServedMem(this, "served_mem",
                    "demand accesses served by memory"),
      statPrefetches(this, "prefetches", "prefetch requests")
{
}

HitLevel
CacheHierarchy::lookupAndFill(std::uint64_t addr)
{
    if (_l0->access(addr))
        return HitLevel::L0;
    if (_l1->access(addr)) {
        _l0->fill(addr);
        return HitLevel::L1;
    }
    if (_l2->access(addr)) {
        _l1->fill(addr);
        _l0->fill(addr);
        return HitLevel::L2;
    }
    _l2->fill(addr);
    _l1->fill(addr);
    _l0->fill(addr);
    return HitLevel::Memory;
}

unsigned
CacheHierarchy::levelLatency(HitLevel level) const
{
    switch (level) {
      case HitLevel::L0: return _params.l0.hitLatency;
      case HitLevel::L1: return _params.l1.hitLatency;
      case HitLevel::L2: return _params.l2.hitLatency;
      case HitLevel::Memory: return _params.memLatency;
    }
    return 0;
}

AccessResult
CacheHierarchy::access(std::uint64_t addr, std::uint64_t cycle)
{
    ++statAccesses;
    std::uint64_t line = addr / _params.l0.lineBytes;

    // Periodically drop completed fills so the map stays small.
    if (cycle >= _inflightSweepCycle) {
        _inflight.eraseIf([cycle](std::uint64_t, const Inflight &f) {
            return f.ready <= cycle;
        });
        _inflightSweepCycle = cycle + 4 * _params.memLatency;
    }

    if (const Inflight *f = _inflight.find(line)) {
        if (f->ready > cycle) {
            // Secondary miss: the line was already requested (by a
            // demand miss or a prefetch); wait out the remainder.
            // This is still a miss at the original level — squash
            // triggers see it as such.
            ++statServedInflight;
            unsigned remaining =
                static_cast<unsigned>(f->ready - cycle);
            SER_DPRINTF(Cache,
                        "cycle {}: addr {} secondary miss on "
                        "in-flight line, {} cycles remaining",
                        cycle, addr, remaining);
            lookupAndFill(addr);  // keep replacement state warm
            return {f->level,
                    std::max(remaining, _params.l0.hitLatency),
                    true};
        }
        _inflight.erase(line);
    }

    HitLevel level = lookupAndFill(addr);
    unsigned latency = levelLatency(level);
    switch (level) {
      case HitLevel::L0: ++statServedL0; break;
      case HitLevel::L1: ++statServedL1; break;
      case HitLevel::L2: ++statServedL2; break;
      case HitLevel::Memory: ++statServedMem; break;
    }
    if (level != HitLevel::L0)
        _inflight[line] = {cycle + latency, level};
    SER_DPRINTF(Cache, "cycle {}: addr {} served at {}, {} cycles",
                cycle, addr, hitLevelName(level), latency);
    return {level, latency};
}

void
CacheHierarchy::prefetch(std::uint64_t addr, std::uint64_t cycle)
{
    ++statPrefetches;
    std::uint64_t line = addr / _params.l0.lineBytes;
    if (_inflight.contains(line))
        return;  // already on its way
    if (_l0->probe(addr))
        return;  // already resident
    HitLevel level = lookupAndFill(addr);
    if (level != HitLevel::L0)
        _inflight[line] = {cycle + levelLatency(level), level};
}

void
CacheHierarchy::invalidateAll()
{
    _l0->invalidateAll();
    _l1->invalidateAll();
    _l2->invalidateAll();
}

} // namespace memory
} // namespace ser
