#include "cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace ser
{
namespace memory
{

Cache::Cache(const CacheParams &params, statistics::StatGroup *parent)
    : StatGroup(params.name, parent), _params(params),
      statHits(this, "hits", "lookups that hit"),
      statMisses(this, "misses", "lookups that missed"),
      statFills(this, "fills", "lines inserted")
{
    if (_params.lineBytes == 0 ||
        !std::has_single_bit(_params.lineBytes))
        SER_FATAL("cache {}: line size {} not a power of two",
                  _params.name, _params.lineBytes);
    if (_params.assoc == 0)
        SER_FATAL("cache {}: zero associativity", _params.name);
    std::uint64_t lines = _params.sizeBytes / _params.lineBytes;
    if (lines == 0 || lines % _params.assoc != 0)
        SER_FATAL("cache {}: {} lines not divisible by assoc {}",
                  _params.name, lines, _params.assoc);
    // Set counts need not be powers of two (the paper's 10MB L2 is
    // not); setIndex uses modulo indexing.
    _numSets = lines / _params.assoc;
    // Uninitialized on purpose: setLines() zeroes a set on first
    // touch, so constructing (or checkpoint-forking a run with) a
    // large, mostly-cold cache costs O(touched sets), not O(size).
    _lines.reset(new Line[lines]);
    _touched.assign((_numSets + 63) / 64, 0);
}

Cache::Line *
Cache::setLines(std::uint64_t set)
{
    Line *base = &_lines[set * _params.assoc];
    std::uint64_t &word = _touched[set >> 6];
    std::uint64_t bit = std::uint64_t{1} << (set & 63);
    if (!(word & bit)) {
        word |= bit;
        for (unsigned w = 0; w < _params.assoc; ++w)
            base[w] = Line{0, 0, false};
    }
    return base;
}

bool
Cache::access(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = setLines(set);
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lruStamp = ++_stamp;
            ++statHits;
            return true;
        }
    }
    ++statMisses;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    std::uint64_t set = setIndex(addr);
    if (!touched(set))
        return false;  // untouched set: all ways invalid
    std::uint64_t tag = tagOf(addr);
    const Line *base = &_lines[set * _params.assoc];
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = setLines(set);
    Line *victim = &base[0];
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lruStamp = ++_stamp;  // already present
            return;
        }
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++_stamp;
    ++statFills;
}

void
Cache::invalidateAll()
{
    // Clearing the touched bitmap makes every set read as all-invalid
    // again; the stale line storage is re-zeroed on next touch.
    _touched.assign(_touched.size(), 0);
}

double
Cache::missRate() const
{
    double total = statHits.value() + statMisses.value();
    return total > 0.0 ? statMisses.value() / total : 0.0;
}

} // namespace memory
} // namespace ser
