/**
 * @file
 * The three-level data-cache hierarchy of the paper's machine.
 *
 * Matches the evaluation platform of Section 5: an 8 KB L0 with
 * 2-cycle hit latency, a 256 KB L1 with 10-cycle hit latency, a 10 MB
 * L2 with 25-cycle hit latency, and main memory behind that. The
 * hierarchy is inclusive and fills all levels on the refill path.
 *
 * The returned HitLevel is what the paper's squash triggers key on:
 * an "L0 miss" trigger fires on any access served below the L0, and
 * an "L1 miss" trigger on any access served below the L1.
 */

#ifndef SER_MEMORY_HIERARCHY_HH
#define SER_MEMORY_HIERARCHY_HH

#include <memory>

#include "memory/cache.hh"
#include "sim/flat_hash.hh"
#include "sim/stats.hh"

namespace ser
{
namespace memory
{

/** Where an access was served from. */
enum class HitLevel : std::uint8_t
{
    L0,
    L1,
    L2,
    Memory,
};

const char *hitLevelName(HitLevel level);

/** The result of one hierarchy access. */
struct AccessResult
{
    HitLevel level;
    unsigned latency;    ///< total load-to-use latency in cycles
    bool secondary = false;  ///< hit an in-flight (MSHR) line
};

/** Parameters for the full hierarchy. */
struct HierarchyParams
{
    CacheParams l0{"l0", 8 * 1024, 64, 4, 2};
    CacheParams l1{"l1", 256 * 1024, 128, 8, 10};
    CacheParams l2{"l2", 10 * 1024 * 1024, 128, 16, 25};
    unsigned memLatency = 200;
};

/** L0 + L1 + L2 + memory. */
class CacheHierarchy : public statistics::StatGroup
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params = {},
                            statistics::StatGroup *parent = nullptr);

    /**
     * Access 'addr' at time 'cycle' for a load or store: probes
     * down the hierarchy, fills every missing level, and reports
     * where the data was found plus the load-to-use latency.
     *
     * Fill timing is MSHR-like: a miss marks its L0 line in flight
     * until the data returns; accesses to an in-flight line before
     * that (including lines requested by prefetch) are secondary
     * misses that pay only the remaining latency.
     */
    AccessResult access(std::uint64_t addr, std::uint64_t cycle);

    /**
     * Prefetch at time 'cycle': starts the fill like a demand miss
     * (so the line is in flight and a demand access pays only the
     * remaining latency) but stalls nothing.
     */
    void prefetch(std::uint64_t addr, std::uint64_t cycle);

    /** Drop all cached state (between measurement regions). */
    void invalidateAll();

    const HierarchyParams &params() const { return _params; }
    const Cache &l0() const { return *_l0; }
    const Cache &l1() const { return *_l1; }
    const Cache &l2() const { return *_l2; }

  private:
    HitLevel lookupAndFill(std::uint64_t addr);
    unsigned levelLatency(HitLevel level) const;

    /** In-flight fills at L0-line granularity, in a flat
     * open-addressing table probed once per load. Stale entries are
     * dropped lazily (line indices never reach the ~0 sentinel). */
    struct Inflight
    {
        std::uint64_t ready;
        HitLevel level;  ///< where the fill is coming from
    };
    sim::FlatHashMap<Inflight> _inflight;
    std::uint64_t _inflightSweepCycle = 0;

    HierarchyParams _params;
    std::unique_ptr<Cache> _l0;
    std::unique_ptr<Cache> _l1;
    std::unique_ptr<Cache> _l2;

    statistics::Scalar statAccesses;
    statistics::Scalar statServedInflight;
    statistics::Scalar statServedL0;
    statistics::Scalar statServedL1;
    statistics::Scalar statServedL2;
    statistics::Scalar statServedMem;
    statistics::Scalar statPrefetches;
};

} // namespace memory
} // namespace ser

#endif // SER_MEMORY_HIERARCHY_HH
