#include "sweep_service.hh"

#include <sys/stat.h>

#include <cstdlib>
#include <exception>
#include <sstream>
#include <vector>

#include "harness/disk_cache.hh"
#include "harness/manifest.hh"
#include "sim/json.hh"
#include "workloads/profile.hh"
#include "workloads/suite.hh"

namespace ser
{
namespace harness
{

namespace
{

constexpr const char *kJsonType = "application/json; charset=utf-8";

} // namespace

std::string
SweepService::ticketJson(const Ticket &t)
{
    std::ostringstream os;
    json::JsonWriter jw(os, 0);
    jw.beginObject();
    jw.kv("id", t.id);
    jw.kv("benchmark", t.benchmark);
    jw.kv("state", t.state);
    jw.kv("warm", t.warm);
    jw.key("result");
    if (t.result.empty())
        jw.nullValue();
    else
        jw.rawValue(t.result);
    jw.endObject();
    return os.str();
}

SweepService::SweepService(unsigned workers)
    : _pool(workers ? workers : 1)
{
}

SweepService::~SweepService() = default;

void
SweepService::mountOn(TelemetryServer &server)
{
    {
        std::lock_guard<std::mutex> guard(_lock);
        _server = &server;
    }
    server.setRequestHandler(
        [this](std::string_view method, std::string_view path,
               const std::string &body) {
            return handle(method, path, body);
        });
}

TelemetryServer::Response
SweepService::handle(std::string_view method, std::string_view path,
                     const std::string &body)
{
    if (path != "/sweep" && path.rfind("/sweep/", 0) != 0)
        return {0, "", ""};  // not ours: let the server route it
    if (method == "POST" && path == "/sweep")
        return postSweep(body);
    if (method == "GET" && path == "/sweep")
        return indexJson();
    if (method == "GET") {
        std::string id_text(path.substr(std::string("/sweep/").size()));
        char *end = nullptr;
        unsigned long long id =
            std::strtoull(id_text.c_str(), &end, 10);
        if (id_text.empty() || !end || *end != '\0')
            return errorResponse(400, "bad ticket id '" + id_text +
                                          "'");
        return getTicket(id);
    }
    return {0, "", ""};  // wrong method: server answers 405
}

TelemetryServer::Response
SweepService::postSweep(const std::string &body)
{
    SweepSpec spec;
    std::string err;
    if (!parseSpec(body, &spec, &err))
        return errorResponse(400, err);

    BuiltProgram built =
        program(spec.benchmark, spec.config.dynamicTarget);
    const std::string answer_key = specKey(spec, built.hash);

    // Fastest tier: this exact spec was already answered by this
    // process — replay the stored manifest (one map lookup; the
    // TelemetryServer publish lock never nests back into _lock, so
    // publishing under it is safe).
    {
        std::lock_guard<std::mutex> guard(_lock);
        auto it = _answers.find(answer_key);
        if (it != _answers.end()) {
            auto ticket = std::make_shared<Ticket>();
            ticket->benchmark = spec.benchmark;
            ticket->warm = true;
            ticket->state = "done";
            ticket->id = _nextId++;
            ticket->result = it->second.manifest;
            _tickets.emplace(ticket->id, ticket);
            ++_warmAnswers;
            if (_server)
                _server->publishRun(ticket->id, ticket->benchmark,
                                    it->second.ipc, ticket->result);
            return {200, kJsonType, ticketJson(*ticket)};
        }
    }

    const bool warm = isWarm(spec, built.hash);

    auto ticket = std::make_shared<Ticket>();
    ticket->benchmark = spec.benchmark;
    ticket->warm = warm;
    {
        std::lock_guard<std::mutex> guard(_lock);
        ticket->id = _nextId++;
        _tickets.emplace(ticket->id, ticket);
    }

    if (warm) {
        // Every section answers from the run cache (memory or disk
        // tier), so this completes inline without simulating.
        double ipc = 0.0;
        std::string manifest =
            runManifest(spec, std::move(built.program), &ipc);
        TelemetryServer *server;
        {
            std::lock_guard<std::mutex> guard(_lock);
            ticket->result = std::move(manifest);
            ticket->state = "done";
            ++_warmAnswers;
            _answers.emplace(answer_key,
                             Answer{ticket->result, ipc});
            server = _server;
        }
        if (server)
            server->publishRun(ticket->id, ticket->benchmark, ipc,
                               ticket->result);
        std::lock_guard<std::mutex> guard(_lock);
        return {200, kJsonType, ticketJson(*ticket)};
    }

    // Cold: schedule on the pool; the client polls GET /sweep/<id>.
    _pool.submit([this, ticket, spec, prog = built.program,
                  answer_key] {
        {
            std::lock_guard<std::mutex> guard(_lock);
            ticket->state = "running";
        }
        std::string manifest;
        double ipc = 0.0;
        bool ok = true;
        try {
            manifest = runManifest(spec, prog, &ipc);
        } catch (const std::exception &) {
            ok = false;
        }
        TelemetryServer *server;
        {
            std::lock_guard<std::mutex> guard(_lock);
            ticket->result = std::move(manifest);
            ticket->state = ok ? "done" : "failed";
            if (ok) {
                ++_coldAnswers;
                _answers.emplace(answer_key,
                                 Answer{ticket->result, ipc});
            }
            server = _server;
        }
        if (ok && server)
            server->publishRun(ticket->id, ticket->benchmark, ipc,
                               ticket->result);
    });
    std::lock_guard<std::mutex> guard(_lock);
    return {202, kJsonType, ticketJson(*ticket)};
}

TelemetryServer::Response
SweepService::getTicket(std::uint64_t id)
{
    std::lock_guard<std::mutex> guard(_lock);
    auto it = _tickets.find(id);
    if (it == _tickets.end())
        return errorResponse(404, "no such ticket");
    return {200, kJsonType, ticketJson(*it->second)};
}

TelemetryServer::Response
SweepService::indexJson()
{
    std::lock_guard<std::mutex> guard(_lock);
    std::ostringstream os;
    json::JsonWriter jw(os, 0);
    jw.beginObject();
    jw.key("tickets");
    jw.beginArray();
    for (const auto &entry : _tickets) {
        const Ticket &t = *entry.second;
        jw.beginObject();
        jw.kv("id", t.id);
        jw.kv("benchmark", t.benchmark);
        jw.kv("state", t.state);
        jw.kv("warm", t.warm);
        jw.endObject();
    }
    jw.endArray();
    jw.kv("warm_answers", _warmAnswers);
    jw.kv("cold_answers", _coldAnswers);
    jw.endObject();
    return {200, kJsonType, os.str()};
}

bool
SweepService::parseSpec(const std::string &body, SweepSpec *spec,
                        std::string *err)
{
    json::JsonValue doc;
    std::string parse_err;
    if (!json::parseJson(body, &doc, &parse_err)) {
        *err = "bad JSON: " + parse_err;
        return false;
    }
    if (!doc.isObject()) {
        *err = "request body must be a JSON object";
        return false;
    }

    // Reject unknown fields so client typos surface as errors, not
    // silently-defaulted sweeps.
    static const char *const known[] = {
        "benchmark", "insts",         "warmup",
        "pet_size",  "trigger_level", "trigger_action",
    };
    for (const auto &member : doc.object) {
        bool ok = false;
        for (const char *name : known)
            ok = ok || member.first == name;
        if (!ok) {
            *err = "unknown field '" + member.first + "'";
            return false;
        }
    }

    const json::JsonValue *bench = doc.find("benchmark");
    if (!bench || !bench->isString()) {
        *err = "missing required string field 'benchmark'";
        return false;
    }
    spec->benchmark = bench->string;
    bool valid_name = false;
    for (const std::string &name : workloads::suiteNames())
        valid_name = valid_name || name == spec->benchmark;
    if (!valid_name) {
        *err = "unknown benchmark '" + spec->benchmark + "'";
        return false;
    }

    auto count = [&](const char *name, std::uint64_t *out,
                     bool positive) {
        const json::JsonValue *v = doc.find(name);
        if (!v)
            return true;
        double n = v->number;
        if (!v->isNumber() || n < 0 || n != static_cast<double>(
                                                static_cast<std::uint64_t>(n))) {
            *err = std::string("field '") + name +
                   "' must be a non-negative integer";
            return false;
        }
        if (positive && n == 0) {
            *err = std::string("field '") + name +
                   "' must be positive";
            return false;
        }
        *out = static_cast<std::uint64_t>(n);
        return true;
    };
    std::uint64_t pet = spec->config.petSize;
    if (!count("insts", &spec->config.dynamicTarget, true) ||
        !count("warmup", &spec->config.warmupInsts, false) ||
        !count("pet_size", &pet, true))
        return false;
    spec->config.petSize = static_cast<std::uint32_t>(pet);

    auto choice = [&](const char *name, std::string *out,
                      std::initializer_list<const char *> allowed) {
        const json::JsonValue *v = doc.find(name);
        if (!v)
            return true;
        if (v->isString()) {
            for (const char *a : allowed) {
                if (v->string == a) {
                    *out = v->string;
                    return true;
                }
            }
        }
        std::string values;
        for (const char *a : allowed)
            values += std::string(values.empty() ? "" : "|") + a;
        *err = std::string("field '") + name + "' must be one of " +
               values;
        return false;
    };
    return choice("trigger_level", &spec->config.triggerLevel,
                  {"none", "l0", "l1", "l2"}) &&
           choice("trigger_action", &spec->config.triggerAction,
                  {"squash", "throttle", "both"});
}

SweepService::BuiltProgram
SweepService::program(const std::string &benchmark,
                      std::uint64_t insts)
{
    {
        std::lock_guard<std::mutex> guard(_lock);
        auto it = _programs.find({benchmark, insts});
        if (it != _programs.end())
            return it->second;
    }
    // Built outside the lock (generation is pure); a racing build of
    // the same point is wasted work, not a correctness problem —
    // first insert wins.
    BuiltProgram built;
    built.program = std::make_shared<const isa::Program>(
        workloads::buildBenchmark(benchmark, insts));
    built.hash = RunCache::programHash(*built.program);
    std::lock_guard<std::mutex> guard(_lock);
    return _programs.emplace(std::make_pair(benchmark, insts), built)
        .first->second;
}

std::string
SweepService::specKey(const SweepSpec &spec,
                      std::uint64_t program_hash)
{
    // The sim key already folds in the program content, warmup,
    // trigger policy and interval grid; the PET size is the one
    // exposed knob that only matters after commit.
    cpu::PipelineParams params = spec.config.pipeline;
    if (params.maxInsts < spec.config.dynamicTarget * 2)
        params.maxInsts = spec.config.dynamicTarget * 2;
    return RunCache::simKey(program_hash, spec.config, params) +
           "|pet=" + std::to_string(spec.config.petSize);
}

bool
SweepService::isWarm(const SweepSpec &spec,
                     std::uint64_t program_hash)
{
    RunCache &cache = RunCache::instance();
    if (!cache.enabled())
        return false;
    // The effective params must match what runProgram hands the
    // pipeline, or the probe key would never match the cache key.
    cpu::PipelineParams params = spec.config.pipeline;
    if (params.maxInsts < spec.config.dynamicTarget * 2)
        params.maxInsts = spec.config.dynamicTarget * 2;
    std::string key =
        RunCache::simKey(program_hash, spec.config, params);
    if (cache.hasSim(key))
        return true;
    DiskCache &disk = DiskCache::instance();
    if (!disk.enabled())
        return false;
    // A stat(2) probe only: if the blob turns out stale or corrupt,
    // the inline run degrades to computing — slower, still correct.
    struct stat st;
    return ::stat(disk.blobPath("sim", key).c_str(), &st) == 0 &&
           S_ISREG(st.st_mode);
}

std::string
SweepService::runManifest(const SweepSpec &spec,
                          std::shared_ptr<const isa::Program> program,
                          double *ipc)
{
    RunArtifacts run = runProgram(std::move(program), spec.config,
                                  spec.benchmark);
    if (ipc)
        *ipc = run.ipc;
    std::ostringstream os;
    json::JsonWriter jw(os);
    writeRunManifest(jw, run, spec.config);
    return os.str();
}

TelemetryServer::Response
SweepService::errorResponse(int status, const std::string &message)
{
    std::ostringstream os;
    json::JsonWriter jw(os, 0);
    jw.beginObject();
    jw.kv("error", message);
    jw.endObject();
    return {status, kJsonType, os.str()};
}

std::uint64_t
SweepService::warmAnswers() const
{
    std::lock_guard<std::mutex> guard(_lock);
    return _warmAnswers;
}

std::uint64_t
SweepService::coldAnswers() const
{
    std::lock_guard<std::mutex> guard(_lock);
    return _coldAnswers;
}

} // namespace harness
} // namespace ser
