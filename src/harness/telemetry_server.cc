#include "telemetry_server.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/build_info.hh"
#include "harness/metrics.hh"
#include "harness/progress.hh"
#include "harness/run_cache.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace ser
{
namespace harness
{

namespace
{

constexpr int kPollTimeoutMs = 200;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default:  return "Error";
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Write the whole response even past a full socket buffer: short
 * poll(POLLOUT) waits between partial sends, give up (peer gone or
 * wedged) after a bounded total. MSG_NOSIGNAL keeps a disappearing
 * scraper from killing the process with SIGPIPE. */
void
writeAll(int fd, const char *data, std::size_t len)
{
    int spins = 0;
    while (len > 0 && spins < 100) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n > 0) {
            data += n;
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            struct pollfd pfd = {fd, POLLOUT, 0};
            ::poll(&pfd, 1, 100);
            ++spins;
            continue;
        }
        return;  // peer closed or hard error: drop the rest
    }
}

} // namespace

TelemetryServer &
TelemetryServer::instance()
{
    // Leaked like every singleton the atexit snapshot machinery may
    // observe (DESIGN.md §10).
    static TelemetryServer *server = new TelemetryServer;
    return *server;
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

void
TelemetryServer::start(std::uint16_t port)
{
    if (_running.load())
        SER_FATAL("telemetry: server already running on port {}",
                  _port);

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        SER_FATAL("telemetry: socket() failed: {}",
                  std::strerror(errno));
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        SER_FATAL("telemetry: cannot bind 127.0.0.1:{}: {}", port,
                  std::strerror(errno));
    if (::listen(_listenFd, 32) != 0)
        SER_FATAL("telemetry: listen() failed: {}",
                  std::strerror(errno));

    socklen_t addr_len = sizeof(addr);
    if (::getsockname(_listenFd,
                      reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0)
        SER_FATAL("telemetry: getsockname() failed: {}",
                  std::strerror(errno));
    _port = ntohs(addr.sin_port);

    if (::pipe(_wakePipe) != 0)
        SER_FATAL("telemetry: pipe() failed: {}",
                  std::strerror(errno));
    setNonBlocking(_listenFd);
    setNonBlocking(_wakePipe[0]);

    _started = std::chrono::steady_clock::now();
    _stopRequested.store(false);
    _running.store(true);
    _thread = std::thread([this] { loop(); });
}

void
TelemetryServer::stop()
{
    if (!_running.exchange(false))
        return;
    _stopRequested.store(true);
    // Wake the poll loop so the join never waits a full timeout.
    char byte = 'x';
    ssize_t ignored = ::write(_wakePipe[1], &byte, 1);
    (void)ignored;
    if (_thread.joinable())
        _thread.join();
    ::close(_listenFd);
    ::close(_wakePipe[0]);
    ::close(_wakePipe[1]);
    _listenFd = -1;
    _wakePipe[0] = _wakePipe[1] = -1;
}

void
TelemetryServer::loop()
{
    std::vector<Connection> conns;
    while (!_stopRequested.load()) {
        const bool accepting = conns.size() < maxConnections;
        const std::size_t polled = conns.size();
        std::vector<pollfd> fds;
        fds.push_back({_wakePipe[0], POLLIN, 0});
        if (accepting)
            fds.push_back({_listenFd, POLLIN, 0});
        for (const Connection &conn : conns)
            fds.push_back({conn.fd, POLLIN, 0});

        if (::poll(fds.data(), fds.size(), kPollTimeoutMs) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        const std::size_t base = accepting ? 2 : 1;

        // Existing connections first: compacting in place keeps
        // fds[base + c] aligned with conns[c] for the polled prefix.
        std::size_t alive = 0;
        for (std::size_t c = 0; c < polled; ++c) {
            Connection &conn = conns[c];
            bool close_it = false;
            if (fds[base + c].revents & (POLLIN | POLLHUP | POLLERR)) {
                char buf[4096];
                ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
                if (n > 0) {
                    conn.buffer.append(buf,
                                       static_cast<std::size_t>(n));
                    bool headComplete =
                        conn.buffer.find("\r\n\r\n") !=
                            std::string::npos ||
                        conn.buffer.find("\n\n") !=
                            std::string::npos;
                    if ((!headComplete &&
                         conn.buffer.size() > maxHeaderBytes) ||
                        conn.buffer.size() >
                            maxHeaderBytes + maxBodyBytes)
                    {
                        // Oversized header/body: drop silently.
                        close_it = true;
                    } else {
                        std::string method, target, body;
                        int parsed = parseRequest(conn.buffer,
                                                  &method, &target,
                                                  &body);
                        if (parsed != 0) {
                            Response response =
                                parsed < 0
                                    ? Response{400,
                                               "text/plain; "
                                               "charset=utf-8",
                                               "bad request\n"}
                                    : handle(method, target, body);
                            sendResponse(conn.fd, response);
                            close_it = true;
                        }
                    }
                } else if (n == 0 ||
                           (errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR)) {
                    close_it = true;
                }
            }
            if (close_it) {
                ::close(conn.fd);
            } else {
                // Guard the self-move when nothing before this
                // connection closed: moving a string onto itself
                // may clear it, losing the buffered partial
                // request.
                if (alive != c)
                    conns[alive] = std::move(conn);
                ++alive;
            }
        }
        conns.resize(alive);

        if (accepting && (fds[1].revents & POLLIN)) {
            int fd = ::accept(_listenFd, nullptr, nullptr);
            if (fd >= 0) {
                setNonBlocking(fd);
                Connection conn;
                conn.fd = fd;
                conns.push_back(std::move(conn));
            }
        }
    }
    for (Connection &conn : conns)
        ::close(conn.fd);
}

void
TelemetryServer::sendResponse(int fd, const Response &response)
{
    std::ostringstream head;
    head << "HTTP/1.1 " << response.status << " "
         << statusText(response.status) << "\r\n"
         << "Content-Type: " << response.contentType << "\r\n"
         << "Content-Length: " << response.body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    std::string header = head.str();
    writeAll(fd, header.data(), header.size());
    writeAll(fd, response.body.data(), response.body.size());
}

int
TelemetryServer::parseRequest(const std::string &buffer,
                              std::string *method,
                              std::string *target,
                              std::string *body)
{
    // The head is complete once the header terminator arrives.
    std::size_t headEnd = buffer.find("\r\n\r\n");
    std::size_t bodyStart;
    if (headEnd != std::string::npos) {
        bodyStart = headEnd + 4;
    } else {
        headEnd = buffer.find("\n\n");
        if (headEnd == std::string::npos)
            return 0;
        bodyStart = headEnd + 2;
    }

    std::size_t eol = buffer.find('\n');
    if (eol == std::string::npos)
        return -1;
    std::string line = buffer.substr(0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    // METHOD SP TARGET SP HTTP/x.y — exactly three fields.
    std::istringstream fields(line);
    std::string m, t, version, extra;
    if (!(fields >> m >> t >> version) || (fields >> extra))
        return -1;
    if (version.rfind("HTTP/", 0) != 0 || t.empty() || t[0] != '/')
        return -1;

    // Content-Length decides how much body to wait for (the only
    // body framing we speak — no chunked encoding).
    std::size_t contentLength = 0;
    std::size_t pos = eol + 1;
    while (pos < headEnd) {
        std::size_t lineEnd = buffer.find('\n', pos);
        if (lineEnd == std::string::npos || lineEnd > headEnd)
            lineEnd = headEnd;
        std::string header = buffer.substr(pos, lineEnd - pos);
        if (!header.empty() && header.back() == '\r')
            header.pop_back();
        pos = lineEnd + 1;
        std::size_t colon = header.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = header.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        if (name != "content-length")
            continue;
        std::string value = header.substr(colon + 1);
        char *end = nullptr;
        unsigned long long parsed =
            std::strtoull(value.c_str(), &end, 10);
        if (!end || end == value.c_str())
            return -1;
        while (*end == ' ')
            ++end;
        if (*end != '\0')
            return -1;
        if (parsed > maxBodyBytes)
            return -1;
        contentLength = static_cast<std::size_t>(parsed);
    }
    if (buffer.size() - bodyStart < contentLength)
        return 0;

    *method = std::move(m);
    *target = std::move(t);
    if (body)
        *body = buffer.substr(bodyStart, contentLength);
    return 1;
}

void
TelemetryServer::setRequestHandler(RequestHandler handler)
{
    std::lock_guard<std::mutex> guard(_handlerLock);
    _handler = std::move(handler);
}

TelemetryServer::Response
TelemetryServer::handle(std::string_view method,
                        std::string_view target) const
{
    return handle(method, target, std::string());
}

TelemetryServer::Response
TelemetryServer::handle(std::string_view method,
                        std::string_view target,
                        const std::string &body) const
{
    // Drop any query string: /status?pretty == /status.
    std::size_t query = target.find('?');
    std::string path(target.substr(
        0, query == std::string_view::npos ? target.size() : query));

    if (method != "GET") {
        // Only a mounted handler speaks non-GET methods.
        RequestHandler handler;
        {
            std::lock_guard<std::mutex> guard(_handlerLock);
            handler = _handler;
        }
        if (handler) {
            Response response = handler(method, path, body);
            if (response.status != 0)
                return response;
        }
        return {405, "text/plain; charset=utf-8",
                "method not allowed\n"};
    }

    if (path == "/healthz")
        return {200, "text/plain; charset=utf-8", "ok\n"};
    if (path == "/metrics")
        return {200, "text/plain; version=0.0.4; charset=utf-8",
                MetricsRegistry::instance().renderExposition()};
    if (path == "/status")
        return {200, "application/json; charset=utf-8",
                statusJson()};
    if (path == "/runs")
        return {200, "application/json; charset=utf-8",
                runsIndexJson()};
    if (path == "/campaign")
        return {200, "application/json; charset=utf-8",
                campaignJson()};
    if (path.rfind("/runs/", 0) == 0) {
        std::string tail = path.substr(6);
        char *end = nullptr;
        unsigned long long index =
            std::strtoull(tail.c_str(), &end, 10);
        if (tail.empty() || !end || *end != '\0')
            return {404, "text/plain; charset=utf-8",
                    "no such run\n"};
        std::lock_guard<std::mutex> guard(_publishLock);
        auto it = _runs.find(static_cast<std::size_t>(index));
        if (it == _runs.end())
            return {404, "text/plain; charset=utf-8",
                    "no such run\n"};
        if (!it->second.manifest.empty()) {
            std::string manifest = it->second.manifest;
            if (manifest.back() != '\n')
                manifest += '\n';
            return {200, "application/json; charset=utf-8",
                    std::move(manifest)};
        }
        // Runs outside the experiment harness have no manifest;
        // serve the summary fields.
        std::ostringstream os;
        {
            json::JsonWriter jw(os);
            jw.beginObject();
            jw.kv("benchmark", it->second.benchmark);
            jw.kv("ipc", it->second.ipc);
            jw.endObject();
        }
        return {200, "application/json; charset=utf-8",
                os.str() + "\n"};
    }
    // Unclaimed GET path: offer it to the mounted handler before
    // falling back to 404.
    RequestHandler handler;
    {
        std::lock_guard<std::mutex> guard(_handlerLock);
        handler = _handler;
    }
    if (handler) {
        Response response = handler(method, path, body);
        if (response.status != 0)
            return response;
    }
    return {404, "text/plain; charset=utf-8", "not found\n"};
}

std::string
TelemetryServer::statusJson() const
{
    Progress::Snapshot snap = Progress::instance().snapshot();

    RunCache &cache = RunCache::instance();
    RunCache::Counters sim = cache.simCounters();
    RunCache::Counters dead = cache.deadnessCounters();
    RunCache::Counters avf = cache.avfCounters();
    std::uint64_t hits = sim.hits + dead.hits + avf.hits;
    std::uint64_t diskHits =
        sim.diskHits + dead.diskHits + avf.diskHits;
    std::uint64_t lookups = hits + diskHits + sim.misses +
                            dead.misses + avf.misses;

    std::uint64_t published, retained, evicted;
    {
        std::lock_guard<std::mutex> guard(_publishLock);
        published = _runsPublished;
        retained = _runs.size();
        evicted = _runsEvicted;
    }

    double uptime = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - _started).count();

    std::ostringstream os;
    {
        json::JsonWriter jw(os);
        jw.beginObject();
        jw.kv("active", snap.active);
        jw.kv("label", snap.label);
        jw.kv("done", snap.done);
        jw.kv("total", snap.total);
        jw.kv("percent", snap.total
                             ? 100.0 * static_cast<double>(snap.done) /
                                   static_cast<double>(snap.total)
                             : 0.0);
        jw.kv("runs_per_sec", snap.runsPerSec);
        jw.key("eta_seconds");
        if (snap.etaSeconds >= 0)
            jw.value(snap.etaSeconds);
        else
            jw.nullValue();
        jw.key("cache");
        jw.beginObject();
        jw.kv("hits", hits);
        jw.kv("disk_hits", diskHits);
        jw.kv("lookups", lookups);
        jw.kv("hit_rate",
              lookups ? static_cast<double>(hits + diskHits) /
                            static_cast<double>(lookups)
                      : 0.0);
        jw.endObject();
        jw.key("campaign");
        if (snap.campaignActive) {
            jw.beginObject();
            jw.kv("ci_half_width", snap.campaignHalfWidth);
            jw.kv("ci_target", snap.campaignTarget);
            jw.endObject();
        } else {
            jw.nullValue();
        }
        jw.kv("runs_published", published);
        jw.kv("runs_retained", retained);
        jw.kv("runs_evicted", evicted);
        jw.kv("uptime_seconds", uptime);
        jw.endObject();
    }
    return os.str() + "\n";
}

std::string
TelemetryServer::runsIndexJson() const
{
    std::ostringstream os;
    {
        json::JsonWriter jw(os);
        std::lock_guard<std::mutex> guard(_publishLock);
        jw.beginObject();
        jw.kv("count", static_cast<std::uint64_t>(_runs.size()));
        jw.kv("published", _runsPublished);
        jw.kv("evicted", _runsEvicted);
        jw.key("runs");
        jw.beginArray();
        for (const auto &entry : _runs) {
            jw.beginObject();
            jw.kv("index",
                  static_cast<std::uint64_t>(entry.first));
            jw.kv("benchmark", entry.second.benchmark);
            jw.kv("ipc", entry.second.ipc);
            jw.kv("manifest",
                  "/runs/" + std::to_string(entry.first));
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    return os.str() + "\n";
}

std::string
TelemetryServer::campaignJson() const
{
    std::ostringstream os;
    {
        json::JsonWriter jw(os);
        std::lock_guard<std::mutex> guard(_publishLock);
        jw.beginObject();
        jw.kv("dropped", _campaignDropped);
        jw.key("points");
        jw.beginArray();
        for (const CampaignSample &sample : _campaignRing) {
            jw.beginObject();
            jw.kv("seq", sample.seq);
            jw.kv("benchmark", sample.benchmark);
            jw.kv("protection", sample.protection);
            jw.kv("batch", sample.point.batch);
            jw.kv("samples", sample.point.samples);
            jw.kv("worst_ci_half_width",
                  sample.point.worstHalfWidth);
            jw.key("structures");
            jw.beginArray();
            for (const auto &s : sample.point.structures) {
                jw.beginObject();
                jw.kv("structure",
                      faults::structureName(s.structure));
                jw.kv("samples", s.samples);
                jw.kv("sdc_rate", s.sdcRate);
                jw.kv("sdc_ci_half_width", s.sdcHalfWidth);
                jw.kv("due_rate", s.dueRate);
                jw.kv("due_ci_half_width", s.dueHalfWidth);
                jw.endObject();
            }
            jw.endArray();
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    return os.str() + "\n";
}

void
TelemetryServer::publishRun(std::size_t index,
                            const std::string &benchmark, double ipc,
                            std::string manifest)
{
    if (!_running.load())
        return;
    std::lock_guard<std::mutex> guard(_publishLock);
    bool fresh = _runs.find(index) == _runs.end();
    PublishedRun &run = _runs[index];
    run.benchmark = benchmark;
    run.ipc = ipc;
    run.manifest = std::move(manifest);
    if (!fresh)
        return;
    ++_runsPublished;
    // Bounded retention: evict the oldest submission index (the map
    // is ordered by it) so an arbitrarily long sweep keeps a fixed
    // window of full manifests instead of all of them.
    while (_runs.size() > runsRingCapacity) {
        _runs.erase(_runs.begin());
        ++_runsEvicted;
    }
}

void
TelemetryServer::publishCampaignPoint(
    const std::string &benchmark, const std::string &protection,
    const faults::ConvergencePoint &point)
{
    if (!_running.load())
        return;
    std::lock_guard<std::mutex> guard(_publishLock);
    if (_campaignRing.size() >= campaignRingCapacity) {
        _campaignRing.pop_front();
        ++_campaignDropped;
    }
    CampaignSample sample;
    sample.seq = _campaignSeq++;
    sample.benchmark = benchmark;
    sample.protection = protection;
    sample.point = point;
    _campaignRing.push_back(std::move(sample));
}

} // namespace harness
} // namespace ser
