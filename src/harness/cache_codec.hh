/**
 * @file
 * Binary serialization of the RunCache artifact types, for the
 * persistent disk tier (harness/disk_cache.hh).
 *
 * The format is a flat little-endian byte stream: scalar fields in
 * declaration order, doubles as their IEEE-754 bit patterns,
 * containers as a u64 count followed by elements, vector<bool>
 * bit-packed into u64 words. POD scalar columns (the SoA incarnation
 * columns, interval samples) are bulk-copied; structs with internal
 * padding are written field-by-field so the encoded bytes — and
 * therefore the blob CRC — never depend on indeterminate padding.
 *
 * Programs round-trip through StaticInst::encode()/decode(): the
 * canonical 64-bit encoding word is the only per-instruction state,
 * so equal-content programs encode to equal bytes (matching
 * RunCache::programHash's content addressing).
 *
 * kSchemaVersion must be bumped whenever any serialized struct
 * changes shape; the disk cache folds it into the blob header so a
 * stale blob misses cleanly instead of mis-decoding.
 *
 * Decoders are total: any truncated or structurally impossible input
 * returns false and leaves *out unspecified (the disk cache then
 * treats the blob as corrupt). They never read past [data, data+len).
 */

#ifndef SER_HARNESS_CACHE_CODEC_HH
#define SER_HARNESS_CACHE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "faults/campaign_engine.hh"
#include "harness/run_cache.hh"

namespace ser
{
namespace harness
{
namespace codec
{

/** Bump on any change to the serialized shape of the types below. */
constexpr std::uint32_t kSchemaVersion = 1;

std::string encodeSimProducts(const SimProducts &products);
std::string encodeDeadness(const avf::DeadnessResult &result);
std::string encodeAvf(const avf::AvfResult &result);
std::string encodeCampaign(const faults::CampaignOutcome &outcome);

/** Decoders require the whole buffer to be consumed exactly. After a
 * successful decodeSimProducts, out->trace.program points at
 * out->program (the bundle owns it, as on the compute path). */
bool decodeSimProducts(const void *data, std::size_t len,
                       SimProducts *out);
bool decodeDeadness(const void *data, std::size_t len,
                    avf::DeadnessResult *out);
bool decodeAvf(const void *data, std::size_t len,
               avf::AvfResult *out);
bool decodeCampaign(const void *data, std::size_t len,
                    faults::CampaignOutcome *out);

} // namespace codec
} // namespace harness
} // namespace ser

#endif // SER_HARNESS_CACHE_CODEC_HH
