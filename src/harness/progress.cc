#include "progress.hh"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "harness/run_cache.hh"
#include "sim/logging.hh"

namespace ser
{
namespace harness
{

namespace
{

constexpr std::int64_t kRedrawIntervalNs = 100'000'000;  // 10 Hz

std::string
formatEta(double seconds)
{
    if (seconds < 0 || seconds > 86400 * 9)
        return "?";
    std::uint64_t s = static_cast<std::uint64_t>(seconds + 0.5);
    char buf[32];
    if (s >= 3600)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "h%02" PRIu64 "m",
                      static_cast<std::uint64_t>(s / 3600),
                      static_cast<std::uint64_t>(s / 60 % 60));
    else if (s >= 60)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "m%02" PRIu64 "s",
                      static_cast<std::uint64_t>(s / 60),
                      static_cast<std::uint64_t>(s % 60));
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "s",
                      static_cast<std::uint64_t>(s));
    return buf;
}

} // namespace

Progress &
Progress::instance()
{
    static Progress *progress = new Progress;
    return *progress;
}

void
Progress::beginSweep(std::size_t total, std::string label)
{
    // State is recorded even when drawing is off, so the telemetry
    // server's /status snapshot works without --progress.
    _total.store(total);
    _done.store(0);
    _lastDrawNs.store(0);
    _ciHalfWidthPpb.store(kNoCi);
    _ciTargetPpb.store(0);
    _everBegan.store(true);
    {
        std::lock_guard<std::mutex> guard(_metaLock);
        _start = std::chrono::steady_clock::now();
        _label = std::move(label);
    }
    if (enabled())
        draw(false);
}

void
Progress::maybeDraw()
{
    if (!enabled())
        return;
    // Claim the redraw with a CAS on the last-draw stamp: a burst of
    // completions costs one redraw, and losers skip straight back to
    // work.
    std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    std::int64_t last = _lastDrawNs.load();
    if (now_ns - last < kRedrawIntervalNs ||
        !_lastDrawNs.compare_exchange_strong(last, now_ns))
        return;
    draw(false);
}

void
Progress::runCompleted()
{
    _done.fetch_add(1);
    maybeDraw();
}

void
Progress::campaignTick(double ci_half_width, double ci_target)
{
    auto to_ppb = [](double v) {
        if (v < 0)
            v = 0;
        if (v > 1)
            v = 1;
        return static_cast<std::uint64_t>(v * 1e9);
    };
    _ciHalfWidthPpb.store(to_ppb(ci_half_width));
    _ciTargetPpb.store(to_ppb(ci_target));
    maybeDraw();
}

void
Progress::endSweep()
{
    if (!enabled() || _total.load() == 0)
        return;
    draw(true);
}

Progress::Snapshot
Progress::snapshot() const
{
    Snapshot snap;
    snap.active = _everBegan.load();
    if (!snap.active)
        return snap;
    snap.done = _done.load();
    snap.total = _total.load();
    {
        std::lock_guard<std::mutex> guard(_metaLock);
        snap.label = _label;
        snap.elapsedSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - _start).count();
    }
    snap.runsPerSec = snap.elapsedSeconds > 0
                          ? static_cast<double>(snap.done) /
                                snap.elapsedSeconds
                          : 0.0;
    snap.etaSeconds =
        snap.runsPerSec > 0
            ? static_cast<double>(snap.total - snap.done) /
                  snap.runsPerSec
            : -1.0;
    std::uint64_t half_width = _ciHalfWidthPpb.load();
    if (half_width != kNoCi) {
        snap.campaignActive = true;
        snap.campaignHalfWidth =
            static_cast<double>(half_width) * 1e-9;
        snap.campaignTarget =
            static_cast<double>(_ciTargetPpb.load()) * 1e-9;
    }
    return snap;
}

void
Progress::draw(bool final)
{
    std::uint64_t done = _done.load();
    std::uint64_t total = _total.load();
    std::string prefix;
    double elapsed;
    {
        std::lock_guard<std::mutex> guard(_metaLock);
        elapsed = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _start).count();
        if (!_label.empty())
            prefix = "[" + _label + "] ";
    }
    double rate = elapsed > 0 ? done / elapsed : 0.0;
    double eta = rate > 0 ? (total - done) / rate : -1.0;

    RunCache &cache = RunCache::instance();
    RunCache::Counters sim = cache.simCounters();
    RunCache::Counters dead = cache.deadnessCounters();
    RunCache::Counters avf = cache.avfCounters();
    std::uint64_t hits = sim.hits + dead.hits + avf.hits;
    std::uint64_t lookups =
        hits + sim.misses + dead.misses + avf.misses;

    // Campaign distance-to-stop: worst tracked CI half-width from
    // the most recent folded batch vs the --ci-target it must fall
    // below (arrow omitted when no target is set).
    char ci_seg[48] = "";
    std::uint64_t half_width_ppb = _ciHalfWidthPpb.load();
    if (half_width_ppb != kNoCi) {
        double half_width =
            static_cast<double>(half_width_ppb) * 1e-9;
        double target =
            static_cast<double>(_ciTargetPpb.load()) * 1e-9;
        if (target > 0)
            std::snprintf(ci_seg, sizeof(ci_seg),
                          " | ci %.2f%%>%.2f%%", 100.0 * half_width,
                          100.0 * target);
        else
            std::snprintf(ci_seg, sizeof(ci_seg), " | ci %.2f%%",
                          100.0 * half_width);
    }

    std::string eta_str = final ? "-" : formatEta(eta);
    char line[320];
    int n = std::snprintf(
        line, sizeof(line),
        "\r%s%" PRIu64 "/%" PRIu64 " runs %3.0f%% | %.1f runs/s"
        " | cache %3.0f%% hit%s | eta %s",
        prefix.c_str(),
        done, total, total ? 100.0 * done / total : 0.0, rate,
        lookups ? 100.0 * hits / lookups : 0.0, ci_seg,
        eta_str.c_str());
    if (n < 0)
        return;

    std::lock_guard<std::mutex> guard(
        logging_detail::stderrLock());
    std::fputs(line, stderr);
    // Pad out any longer previous paint, then either park the
    // cursor at the line start (live) or release the line (final).
    std::fputs("        ", stderr);
    if (final)
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace harness
} // namespace ser
