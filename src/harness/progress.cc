#include "progress.hh"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "harness/run_cache.hh"
#include "sim/logging.hh"

namespace ser
{
namespace harness
{

namespace
{

constexpr std::int64_t kRedrawIntervalNs = 100'000'000;  // 10 Hz

std::string
formatEta(double seconds)
{
    if (seconds < 0 || seconds > 86400 * 9)
        return "?";
    std::uint64_t s = static_cast<std::uint64_t>(seconds + 0.5);
    char buf[32];
    if (s >= 3600)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "h%02" PRIu64 "m",
                      static_cast<std::uint64_t>(s / 3600),
                      static_cast<std::uint64_t>(s / 60 % 60));
    else if (s >= 60)
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "m%02" PRIu64 "s",
                      static_cast<std::uint64_t>(s / 60),
                      static_cast<std::uint64_t>(s % 60));
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "s",
                      static_cast<std::uint64_t>(s));
    return buf;
}

} // namespace

Progress &
Progress::instance()
{
    static Progress *progress = new Progress;
    return *progress;
}

void
Progress::beginSweep(std::size_t total, std::string label)
{
    if (!enabled())
        return;
    _total.store(total);
    _done.store(0);
    _lastDrawNs.store(0);
    _start = std::chrono::steady_clock::now();
    _label = std::move(label);
    draw(false);
}

void
Progress::runCompleted()
{
    if (!enabled())
        return;
    _done.fetch_add(1);

    // Claim the redraw with a CAS on the last-draw stamp: a burst of
    // completions costs one redraw, and losers skip straight back to
    // work.
    auto now = std::chrono::steady_clock::now();
    std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - _start).count();
    std::int64_t last = _lastDrawNs.load();
    if (now_ns - last < kRedrawIntervalNs ||
        !_lastDrawNs.compare_exchange_strong(last, now_ns))
        return;
    draw(false);
}

void
Progress::endSweep()
{
    if (!enabled() || _total.load() == 0)
        return;
    draw(true);
}

void
Progress::draw(bool final)
{
    std::uint64_t done = _done.load();
    std::uint64_t total = _total.load();
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _start).count();
    double rate = elapsed > 0 ? done / elapsed : 0.0;
    double eta = rate > 0 ? (total - done) / rate : -1.0;

    RunCache &cache = RunCache::instance();
    RunCache::Counters sim = cache.simCounters();
    RunCache::Counters dead = cache.deadnessCounters();
    RunCache::Counters avf = cache.avfCounters();
    std::uint64_t hits = sim.hits + dead.hits + avf.hits;
    std::uint64_t lookups =
        hits + sim.misses + dead.misses + avf.misses;

    std::string prefix = _label.empty() ? "" : "[" + _label + "] ";
    std::string eta_str = final ? "-" : formatEta(eta);
    char line[256];
    int n = std::snprintf(
        line, sizeof(line),
        "\r%s%" PRIu64 "/%" PRIu64 " runs %3.0f%% | %.1f runs/s"
        " | cache %3.0f%% hit | eta %s",
        prefix.c_str(),
        done, total, total ? 100.0 * done / total : 0.0, rate,
        lookups ? 100.0 * hits / lookups : 0.0, eta_str.c_str());
    if (n < 0)
        return;

    std::lock_guard<std::mutex> guard(
        logging_detail::stderrLock());
    std::fputs(line, stderr);
    // Pad out any longer previous paint, then either park the
    // cursor at the line start (live) or release the line (final).
    std::fputs("        ", stderr);
    if (final)
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace harness
} // namespace ser
