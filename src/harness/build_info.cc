#include "build_info.hh"

// The definitions are attached to this one translation unit by
// src/harness/CMakeLists.txt (set_source_files_properties), so a new
// commit only recompiles this file. Fallbacks keep non-CMake builds
// (and IDE indexers) compiling.
#ifndef SER_BUILD_GIT
#define SER_BUILD_GIT "unknown"
#endif
#ifndef SER_BUILD_COMPILER
#define SER_BUILD_COMPILER "unknown"
#endif
#ifndef SER_BUILD_TYPE
#define SER_BUILD_TYPE "unspecified"
#endif
#ifndef SER_BUILD_SANITIZE
#define SER_BUILD_SANITIZE "none"
#endif

namespace ser
{
namespace harness
{

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = {
        SER_BUILD_GIT,
        SER_BUILD_COMPILER,
        sizeof(SER_BUILD_TYPE) > 1 ? SER_BUILD_TYPE : "unspecified",
        sizeof(SER_BUILD_SANITIZE) > 1 ? SER_BUILD_SANITIZE : "none",
    };
    return info;
}

} // namespace harness
} // namespace ser
