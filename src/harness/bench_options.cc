#include "bench_options.hh"

#include <cstdlib>
#include <iostream>

#include "harness/cache_codec.hh"
#include "harness/disk_cache.hh"
#include "harness/metrics.hh"
#include "harness/progress.hh"
#include "harness/run_cache.hh"
#include "harness/shutdown.hh"
#include "harness/suite_runner.hh"
#include "harness/telemetry_server.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"

namespace ser
{
namespace harness
{

namespace
{

void
printUsage(const char *argv0, const std::string &usage)
{
    std::cout << argv0;
    if (!usage.empty())
        std::cout << " -- " << usage;
    std::cout << "\n\n"
              << "Shared options:\n"
              << "  --csv            print tables as CSV\n"
              << "  --json PATH      write a JSON run manifest "
                 "(+ .intervals.jsonl when sampling)\n"
              << "  --intervals N    sample the pipeline every N "
                 "cycles (the series is written as\n"
                 "                   <manifest>.intervals.jsonl, so "
                 "this requires --json)\n"
              << "  --trace-events F write instruction-lifetime "
                 "Chrome trace-event JSON to F\n"
                 "                   (open in ui.perfetto.dev or "
                 "chrome://tracing)\n"
              << "  --topn N         per-PC AVF attribution: print "
                 "the top-N hotspot table\n"
              << "  --jobs N         suite-sweep worker threads "
                 "(default: SER_JOBS or 1; output is identical "
                 "for any N)\n"
              << "  --no-run-cache   disable the memoized run cache "
                 "(re-simulate every sweep point;\n"
                 "                   output is byte-identical either "
                 "way)\n"
              << "  --cache-dir DIR  persistent disk tier for the "
                 "run cache (or SER_CACHE_DIR):\n"
                 "                   artifact blobs under DIR survive "
                 "the process, so repeated\n"
                 "                   sweeps skip simulation; output "
                 "is byte-identical cold or warm\n"
              << "  --no-cycle-skip  disable idle-cycle fast-forward "
                 "in the timing pipeline\n"
                 "                   (tick every cycle; output is "
                 "byte-identical either way)\n"
              << "  --metrics-out F  write Prometheus text-exposition "
                 "telemetry snapshots to F\n"
                 "                   (every sweep epoch, at exit, and "
                 "on SIGINT/SIGTERM;\n"
                 "                   also enables sim::prof)\n"
              << "  --progress       live one-line sweep progress on "
                 "stderr\n"
              << "  --serve PORT     live-telemetry HTTP server on "
                 "127.0.0.1:PORT\n"
                 "                   (GET /metrics /status /runs "
                 "/campaign /healthz;\n"
                 "                   0 picks an ephemeral port)\n"
              << "  --ci-target X    fault-injection campaigns stop "
                 "early once every 95% CI\n"
                 "                   half-width falls below X "
                 "(benches with campaigns only;\n"
                 "                   0 = run all samples)\n"
              << "  --convergence-out F\n"
                 "                   stream per-batch campaign "
                 "convergence as JSONL to F\n"
                 "                   (benches with campaigns only)\n"
              << "  --debug FLAGS    debug trace flags (Pipeline, "
                 "IQ, Trigger, Pi, PET, Cache, All)\n"
              << "  --help           this message\n"
              << "  key=value        simulator parameter overrides\n";
}

/** "--name value" or "--name=value"; fatal when the value is
 * missing. */
std::string
optionValue(int argc, char **argv, int &i, const std::string &name,
            const std::string &token)
{
    auto eq = token.find('=');
    if (eq != std::string::npos)
        return token.substr(eq + 1);
    if (i + 1 >= argc)
        SER_FATAL("{}: missing value for {}", argv[0], name);
    return argv[++i];
}

std::uint64_t
parseCount(const char *argv0, const std::string &name,
           const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || !end || *end != '\0')
        SER_FATAL("{}: bad value '{}' for {}", argv0, text, name);
    return v;
}

double
parseRate(const char *argv0, const std::string &name,
          const std::string &text)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (text.empty() || !end || *end != '\0' || v < 0.0 || v > 1.0)
        SER_FATAL("{}: bad value '{}' for {} (want a rate in "
                  "[0, 1])", argv0, text, name);
    return v;
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &usage)
{
    BenchOptions opts;
    bool jobs_given = false;
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            printUsage(argv[0], usage);
            std::exit(0);
        } else if (token == "--csv") {
            opts.csv = true;
        } else if (token == "--json" ||
                   token.rfind("--json=", 0) == 0) {
            opts.jsonPath =
                optionValue(argc, argv, i, "--json", token);
            if (opts.jsonPath.empty())
                SER_FATAL("{}: --json needs a path", argv[0]);
        } else if (token == "--intervals" ||
                   token.rfind("--intervals=", 0) == 0) {
            std::string text =
                optionValue(argc, argv, i, "--intervals", token);
            opts.intervalCycles =
                parseCount(argv[0], "--intervals", text);
            if (opts.intervalCycles == 0)
                SER_FATAL("{}: --intervals must be positive",
                          argv[0]);
        } else if (token == "--trace-events" ||
                   token.rfind("--trace-events=", 0) == 0) {
            opts.traceEventsPath =
                optionValue(argc, argv, i, "--trace-events", token);
            if (opts.traceEventsPath.empty())
                SER_FATAL("{}: --trace-events needs a path",
                          argv[0]);
        } else if (token == "--topn" ||
                   token.rfind("--topn=", 0) == 0) {
            std::string text =
                optionValue(argc, argv, i, "--topn", token);
            std::uint64_t topn = parseCount(argv[0], "--topn", text);
            if (topn == 0)
                SER_FATAL("{}: --topn must be positive", argv[0]);
            opts.topn = static_cast<std::uint32_t>(topn);
        } else if (token == "--jobs" ||
                   token.rfind("--jobs=", 0) == 0) {
            std::string text =
                optionValue(argc, argv, i, "--jobs", token);
            std::uint64_t jobs =
                parseCount(argv[0], "--jobs", text);
            if (jobs == 0)
                SER_FATAL("{}: --jobs must be positive", argv[0]);
            opts.jobs = static_cast<unsigned>(jobs);
            jobs_given = true;
        } else if (token == "--no-run-cache") {
            opts.runCache = false;
            RunCache::instance().setEnabled(false);
        } else if (token == "--cache-dir" ||
                   token.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir =
                optionValue(argc, argv, i, "--cache-dir", token);
            if (opts.cacheDir.empty())
                SER_FATAL("{}: --cache-dir needs a path", argv[0]);
        } else if (token == "--no-cycle-skip") {
            opts.cycleSkip = false;
            cpu::setDefaultCycleSkip(false);
        } else if (token == "--metrics-out" ||
                   token.rfind("--metrics-out=", 0) == 0) {
            opts.metricsOutPath =
                optionValue(argc, argv, i, "--metrics-out", token);
            if (opts.metricsOutPath.empty())
                SER_FATAL("{}: --metrics-out needs a path", argv[0]);
        } else if (token == "--ci-target" ||
                   token.rfind("--ci-target=", 0) == 0) {
            std::string text =
                optionValue(argc, argv, i, "--ci-target", token);
            opts.ciTarget = parseRate(argv[0], "--ci-target", text);
        } else if (token == "--convergence-out" ||
                   token.rfind("--convergence-out=", 0) == 0) {
            opts.convergenceOutPath = optionValue(
                argc, argv, i, "--convergence-out", token);
            if (opts.convergenceOutPath.empty())
                SER_FATAL("{}: --convergence-out needs a path",
                          argv[0]);
        } else if (token == "--serve" ||
                   token.rfind("--serve=", 0) == 0) {
            std::string text =
                optionValue(argc, argv, i, "--serve", token);
            std::uint64_t port =
                parseCount(argv[0], "--serve", text);
            if (port > 65535)
                SER_FATAL("{}: --serve port {} out of range",
                          argv[0], port);
            opts.servePort = static_cast<int>(port);
        } else if (token == "--progress") {
            opts.progress = true;
            Progress::instance().setEnabled(true);
        } else if (token == "--debug" ||
                   token.rfind("--debug=", 0) == 0) {
            debug::setFlags(
                optionValue(argc, argv, i, "--debug", token));
        } else if (token.rfind("--", 0) == 0) {
            SER_FATAL("{}: unknown option '{}' (--help lists them)",
                      argv[0], token);
        } else {
            // key=value override, exactly as Config::parseArgs.
            opts.config.parseAssignment(token);
        }
    }
    // Legacy spelling: csv=1 still selects CSV output.
    opts.csv = opts.csv || opts.config.getBool("csv", false);
    // Legacy key=value parity for the trace flags (the debug_flags=
    // key src/sim/debug.hh documents): same parser, same fatal
    // error on unknown names as --debug.
    if (opts.config.has("debug_flags"))
        debug::setFlags(opts.config.getString("debug_flags", ""));
    // Without an explicit --jobs, the SER_JOBS environment variable
    // decides (default: serial).
    if (!jobs_given)
        opts.jobs = defaultJobs();
    // Without an explicit --cache-dir, SER_CACHE_DIR decides
    // (default: no disk tier).
    if (opts.cacheDir.empty()) {
        const char *env = std::getenv("SER_CACHE_DIR");
        if (env && *env)
            opts.cacheDir = env;
    }
    if (!opts.cacheDir.empty())
        DiskCache::instance().setDirectory(opts.cacheDir,
                                           codec::kSchemaVersion);
    // The interval series is only ever written next to a manifest;
    // sampling without one silently produced nothing before.
    if (opts.intervalCycles && opts.jsonPath.empty())
        SER_WARN("--intervals has no effect without --json: the "
                 "time series is written to "
                 "<manifest>.intervals.jsonl");
    // Arm telemetry last, so a --help/usage error never leaves a
    // half-armed registry. The atexit snapshot makes plain
    // (non-suite) binaries emit a final exposition file too.
    if (!opts.metricsOutPath.empty()) {
        prof::setEnabled(true);
        MetricsRegistry::instance().setOutputPath(
            opts.metricsOutPath);
        std::atexit([] {
            MetricsRegistry::instance().writeSnapshot();
        });
        // Terminating signals never unwind through atexit; a
        // dedicated sigwait watcher flushes the final snapshot on
        // SIGINT/SIGTERM instead (harness/shutdown.hh). parse()
        // still runs before any worker/server thread exists, so the
        // blocked-signal mask is inherited everywhere.
        installShutdownFlush();
    }
    // The HTTP server starts after every option is parsed (a --help
    // or usage error never leaves a live socket) and before any
    // simulation work, so a scraper can watch the sweep from run 0.
    if (opts.servePort >= 0) {
        TelemetryServer &server = TelemetryServer::instance();
        server.start(static_cast<std::uint16_t>(opts.servePort));
        // The announce goes to stderr, not SER_INFORM (stdout):
        // stdout must stay byte-identical with --serve on vs off.
        std::cerr << "info: telemetry: serving http://127.0.0.1:"
                  << server.port()
                  << "/ (/metrics /status /runs /campaign "
                     "/healthz)\n";
    }
    return opts;
}

} // namespace harness
} // namespace ser
