#include "experiment.hh"

#include <memory>
#include <sstream>

#include "core/pet_buffer.hh"
#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "harness/metrics.hh"
#include "harness/progress.hh"
#include "harness/telemetry_server.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"
#include "sim/trace_event.hh"
#include "workloads/suite.hh"

namespace ser
{
namespace harness
{

RunArtifacts
runProgram(const isa::Program &program,
           const ExperimentConfig &config, const std::string &name)
{
    return runProgram(std::make_shared<const isa::Program>(program),
                      config, name);
}

namespace
{

/**
 * One full pipeline simulation: the miss path of the run cache's sim
 * section, and the direct path when the cache is bypassed. The
 * returned bundle owns the program it ran, so its trace.program
 * pointer stays valid for as long as any cache hit shares it.
 */
SimProducts
simulate(std::shared_ptr<const isa::Program> program,
         const ExperimentConfig &config,
         const cpu::PipelineParams &params, trace::TraceWriter *tw)
{
    SimProducts products;
    products.program = std::move(program);

    cpu::InOrderPipeline pipeline(*products.program, params);
    auto policy = core::makeTriggerPolicy(config.triggerLevel,
                                          config.triggerAction);
    pipeline.setExposurePolicy(policy.get());
    pipeline.setWarmupInsts(config.warmupInsts);

    std::unique_ptr<cpu::IntervalSampler> sampler;
    if (config.intervalCycles) {
        sampler = std::make_unique<cpu::IntervalSampler>(
            config.intervalCycles);
        pipeline.setIntervalSampler(sampler.get());
    }
    if (tw)
        pipeline.setTraceWriter(tw);

    products.trace = pipeline.run();
    products.ipc = products.trace.ipc();
    products.poolHighWater = pipeline.poolHighWater();
    products.cyclesSkipped = pipeline.cyclesSkipped();
    if (sampler)
        products.intervals = sampler->samples();

    std::ostringstream stats;
    pipeline.dumpStats(stats);
    policy->dumpStats(stats);
    products.statsDump = stats.str();

    std::ostringstream stats_json;
    {
        json::JsonWriter jw(stats_json);
        jw.beginObject();
        pipeline.dumpJson(jw);
        policy->dumpJson(jw);
        jw.endObject();
    }
    products.statsJson = stats_json.str();
    return products;
}

/** The body of runProgram; the public wrapper adds the run-status
 * accounting around it. */
RunArtifacts
runProgramImpl(std::shared_ptr<const isa::Program> program,
               const ExperimentConfig &config,
               const std::string &name)
{
    SER_PROF_SCOPE("run");
    RunArtifacts out;
    out.benchmark = name;
    out.program = std::move(program);

    cpu::PipelineParams params = config.pipeline;
    if (params.maxInsts < config.dynamicTarget * 2)
        params.maxInsts = config.dynamicTarget * 2;

    // Trace-event capture needs a live pipeline (per-run pid, PET
    // replay), so those runs bypass the cache entirely.
    RunCache &cache = RunCache::instance();
    const bool cacheable =
        cache.enabled() && config.traceEventsPid == 0;

    std::unique_ptr<trace::TraceWriter> tw;
    if (config.traceEventsPid) {
        tw = std::make_unique<trace::TraceWriter>(
            config.traceEventsPid);
        tw->processName(name);
    }

    // The phase timers always run so the manifest records the same
    // phase keys with or without the cache (a hit is just ~0s).
    std::string sim_key;
    std::shared_ptr<const SimProducts> sim;
    {
        ScopedTimer timer(out.timings, "pipeline");
        SER_PROF_SCOPE("pipeline");
        if (cacheable) {
            sim_key = RunCache::simKey(*out.program, config, params);
            sim = cache.getSim(
                sim_key,
                [&] {
                    return simulate(out.program, config, params,
                                    nullptr);
                },
                &out.cacheSim);
        } else {
            sim = std::make_shared<const SimProducts>(simulate(
                out.program, config, params, tw.get()));
        }
    }
    // Adopt the bundle's (possibly cached, content-identical)
    // program so trace->program stays valid for the artifact's
    // lifetime, and alias the trace to the bundle that owns it.
    out.program = sim->program;
    out.trace = std::shared_ptr<const cpu::SimTrace>(sim,
                                                     &sim->trace);
    out.ipc = sim->ipc;
    out.statsDump = sim->statsDump;
    out.statsJson = sim->statsJson;
    out.intervals = sim->intervals;
    out.poolHighWater = sim->poolHighWater;
    out.cyclesSkipped = sim->cyclesSkipped;

    {
        ScopedTimer timer(out.timings, "deadness");
        SER_PROF_SCOPE("deadness");
        auto compute = [&] { return avf::analyzeDeadness(*out.trace); };
        if (cacheable)
            out.deadness = cache.getDeadness(
                RunCache::deadnessKey(sim_key), compute,
                &out.cacheDeadness);
        else
            out.deadness =
                std::make_shared<const avf::DeadnessResult>(
                    compute());
    }
    {
        ScopedTimer timer(out.timings, "avf");
        SER_PROF_SCOPE("avf");
        auto compute = [&] {
            return avf::computeAvf(*out.trace, *out.deadness,
                                   config.intervalCycles);
        };
        if (cacheable)
            out.avf = cache.getAvf(RunCache::avfKey(sim_key),
                                   compute, &out.cacheAvf);
        else
            out.avf = std::make_shared<const avf::AvfResult>(
                compute());
    }
    {
        ScopedTimer timer(out.timings, "false_due");
        SER_PROF_SCOPE("false_due");
        out.falseDue =
            core::analyzeFalseDue(*out.avf, config.petSize);
    }
    if (config.attributionTopN) {
        ScopedTimer timer(out.timings, "attribution");
        SER_PROF_SCOPE("attribution");
        out.attribution =
            avf::attributeAvf(*out.trace, *out.deadness);
    }
    if (config.campaign.samples) {
        ScopedTimer timer(out.timings, "campaign");
        // Live-telemetry fan-out rides on the onConvergence hook:
        // every folded batch updates the --progress CI segment and
        // the telemetry server's /campaign ring. Hooks are
        // non-semantic (excluded from cacheKey), and like the
        // ser_campaign_* counters below they fire on the miss path
        // only — a cache hit re-runs nothing, so there is nothing
        // live to report.
        faults::CampaignSpec spec = config.campaign;
        {
            auto inner = spec.onConvergence;
            std::string benchmark = out.benchmark;
            std::string protection =
                faults::protectionName(spec.protection);
            double ci_target = spec.ciTarget;
            spec.onConvergence =
                [inner, benchmark, protection,
                 ci_target](const faults::ConvergencePoint &point) {
                    if (inner)
                        inner(point);
                    Progress::instance().campaignTick(
                        point.worstHalfWidth, ci_target);
                    TelemetryServer::instance().publishCampaignPoint(
                        benchmark, protection, point);
                };
        }
        auto compute = [&] {
            faults::CampaignOutcome result = faults::runCampaignEngine(
                *out.program, *out.trace, *out.deadness, *out.avf,
                spec);
            // Work-performed counters live on the miss path so a
            // cache hit (which injects nothing) does not inflate
            // them; hit/miss patterns are scheduling-independent, so
            // the totals stay byte-identical across --jobs.
            MetricsRegistry &metrics = MetricsRegistry::instance();
            metrics.add("ser_campaign_injections_total",
                        result.samplesRun,
                        "Fault-injection samples classified by "
                        "campaign runs.");
            metrics.add("ser_campaign_reruns_total", result.reruns,
                        "Injections that needed a forked "
                        "counterfactual re-run.");
            metrics.add("ser_campaign_rerun_steps_total",
                        result.rerunSteps,
                        "Dynamic instructions executed by forked "
                        "re-runs.");
            metrics.add("ser_campaign_golden_steps_total",
                        result.goldenSteps,
                        "Dynamic length of campaign golden runs (one "
                        "full replay equivalent each).");
            if (result.earlyStopped)
                metrics.add("ser_campaign_early_stops_total", 1,
                            "Campaigns stopped early by the CI "
                            "half-width target.");
            return result;
        };
        if (cacheable)
            out.campaign = cache.getCampaign(
                RunCache::campaignKey(sim_key, spec),
                compute, &out.cacheCampaign);
        else
            out.campaign =
                std::make_shared<const faults::CampaignOutcome>(
                    compute());
    }
    if (tw) {
        SER_PROF_SCOPE("trace_export");
        // Post-run PET-buffer replay (tracing only): drive the
        // operational buffer with the committed stream, pi set on
        // first-level-dead register defs — the population the PET
        // mechanism exists to deallocate. This puts pi_set and
        // pet_evict instants on the PET track without touching the
        // timing model.
        core::PetBuffer pet(config.petSize);
        pet.setTraceWriter(tw.get());
        for (std::size_t i = 0; i < out.trace->commits.size(); ++i) {
            const cpu::CommitRecord &cr = out.trace->commits[i];
            core::PetEntry entry;
            entry.seq = i;
            entry.inst = out.program->inst(cr.staticIdx);
            entry.qpTrue = cr.qpTrue != 0;
            entry.memAddr = cr.memAddr;
            entry.pi = i < out.deadness->kind.size() &&
                       out.deadness->kind[i] ==
                           avf::DeadKind::FddReg;
            pet.retire(entry);
        }
        pet.drain();

        if (!tw->balanced())
            SER_PANIC("trace: run '{}' left unbalanced duration "
                      "slices", name);
        MetricsRegistry::instance().add(
            "ser_trace_events_total", tw->eventCount(),
            "Chrome trace events emitted by instruction-lifetime "
            "capture runs.");
        out.traceEvents = tw->str();
    }
    return out;
}

} // namespace

RunArtifacts
runProgram(std::shared_ptr<const isa::Program> program,
           const ExperimentConfig &config, const std::string &name)
{
    MetricsRegistry &metrics = MetricsRegistry::instance();
    RunArtifacts out;
    try {
        out = runProgramImpl(std::move(program), config, name);
    } catch (...) {
        metrics.add("ser_runs_total", 1,
                    "Experiment runs by final status.", "status",
                    "failed");
        throw;
    }
    metrics.add("ser_runs_total", 1,
                "Experiment runs by final status.", "status", "ok");
    for (const auto &phase : out.timings.phases)
        metrics.addSeconds(
            "ser_run_phase_seconds_total", phase.second,
            "Wall-clock seconds per experiment phase.", "phase",
            phase.first);
    metrics.maxGauge(
        "ser_dyninst_pool_high_water", out.poolHighWater,
        "Largest in-flight DynInst pool size observed in any run.");
    if (out.campaign) {
        metrics.maxGauge(
            "ser_campaign_ci_half_width_ppm",
            static_cast<std::uint64_t>(out.campaign->ciHalfWidth *
                                       1e6),
            "Widest final campaign CI half-width, in parts per "
            "million of rate.");
    }
    return out;
}

void
prependTimings(PhaseTimings head, RunArtifacts &run)
{
    // Phases recorded outside runProgram (the one-time program
    // build) reach the metrics registry here — called exactly once
    // per build, so nothing double-counts.
    for (const auto &phase : head.phases)
        MetricsRegistry::instance().addSeconds(
            "ser_run_phase_seconds_total", phase.second,
            "Wall-clock seconds per experiment phase.", "phase",
            phase.first);
    head.phases.insert(head.phases.end(),
                       run.timings.phases.begin(),
                       run.timings.phases.end());
    run.timings = std::move(head);
}

RunArtifacts
runBenchmark(const workloads::BenchmarkProfile &profile,
             const ExperimentConfig &config)
{
    PhaseTimings build_timings;
    auto program = [&] {
        ScopedTimer timer(build_timings, "build");
        return std::make_shared<const isa::Program>(
            workloads::buildBenchmark(profile,
                                      config.dynamicTarget));
    }();
    RunArtifacts out =
        runProgram(std::move(program), config, profile.name);
    out.seed = profile.seed;
    // The build phase happened first; keep it first in the manifest.
    prependTimings(std::move(build_timings), out);
    return out;
}

RunArtifacts
runBenchmark(const std::string &name, const ExperimentConfig &config)
{
    return runBenchmark(workloads::findProfile(name), config);
}

} // namespace harness
} // namespace ser
