#include "experiment.hh"

#include <memory>
#include <sstream>

#include "core/pet_buffer.hh"
#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/trace_event.hh"
#include "workloads/suite.hh"

namespace ser
{
namespace harness
{

RunArtifacts
runProgram(const isa::Program &program,
           const ExperimentConfig &config, const std::string &name)
{
    return runProgram(std::make_shared<const isa::Program>(program),
                      config, name);
}

RunArtifacts
runProgram(std::shared_ptr<const isa::Program> program,
           const ExperimentConfig &config, const std::string &name)
{
    RunArtifacts out;
    out.benchmark = name;
    out.program = std::move(program);

    cpu::PipelineParams params = config.pipeline;
    if (params.maxInsts < config.dynamicTarget * 2)
        params.maxInsts = config.dynamicTarget * 2;

    cpu::InOrderPipeline pipeline(*out.program, params);
    auto policy = core::makeTriggerPolicy(config.triggerLevel,
                                          config.triggerAction);
    pipeline.setExposurePolicy(policy.get());
    pipeline.setWarmupInsts(config.warmupInsts);

    std::unique_ptr<cpu::IntervalSampler> sampler;
    if (config.intervalCycles) {
        sampler = std::make_unique<cpu::IntervalSampler>(
            config.intervalCycles);
        pipeline.setIntervalSampler(sampler.get());
    }

    std::unique_ptr<trace::TraceWriter> tw;
    if (config.traceEventsPid) {
        tw = std::make_unique<trace::TraceWriter>(
            config.traceEventsPid);
        tw->processName(name);
        pipeline.setTraceWriter(tw.get());
    }

    {
        ScopedTimer timer(out.timings, "pipeline");
        out.trace = pipeline.run();
    }
    out.ipc = out.trace.ipc();
    if (sampler)
        out.intervals = sampler->samples();

    std::ostringstream stats;
    pipeline.dumpStats(stats);
    policy->dumpStats(stats);
    out.statsDump = stats.str();

    std::ostringstream stats_json;
    {
        json::JsonWriter jw(stats_json);
        jw.beginObject();
        pipeline.dumpJson(jw);
        policy->dumpJson(jw);
        jw.endObject();
    }
    out.statsJson = stats_json.str();

    {
        ScopedTimer timer(out.timings, "deadness");
        out.deadness = avf::analyzeDeadness(out.trace);
    }
    {
        ScopedTimer timer(out.timings, "avf");
        out.avf = avf::computeAvf(out.trace, out.deadness,
                                  config.intervalCycles);
    }
    {
        ScopedTimer timer(out.timings, "false_due");
        out.falseDue = core::analyzeFalseDue(out.avf, config.petSize);
    }
    if (config.attributionTopN) {
        ScopedTimer timer(out.timings, "attribution");
        out.attribution = avf::attributeAvf(out.trace, out.deadness);
    }
    if (tw) {
        // Post-run PET-buffer replay (tracing only): drive the
        // operational buffer with the committed stream, pi set on
        // first-level-dead register defs — the population the PET
        // mechanism exists to deallocate. This puts pi_set and
        // pet_evict instants on the PET track without touching the
        // timing model.
        core::PetBuffer pet(config.petSize);
        pet.setTraceWriter(tw.get());
        for (std::size_t i = 0; i < out.trace.commits.size(); ++i) {
            const cpu::CommitRecord &cr = out.trace.commits[i];
            core::PetEntry entry;
            entry.seq = i;
            entry.inst = out.program->inst(cr.staticIdx);
            entry.qpTrue = cr.qpTrue != 0;
            entry.memAddr = cr.memAddr;
            entry.pi = i < out.deadness.kind.size() &&
                       out.deadness.kind[i] == avf::DeadKind::FddReg;
            pet.retire(entry);
        }
        pet.drain();

        if (!tw->balanced())
            SER_PANIC("trace: run '{}' left unbalanced duration "
                      "slices", name);
        out.traceEvents = tw->str();
    }
    return out;
}

void
prependTimings(PhaseTimings head, RunArtifacts &run)
{
    head.phases.insert(head.phases.end(),
                       run.timings.phases.begin(),
                       run.timings.phases.end());
    run.timings = std::move(head);
}

RunArtifacts
runBenchmark(const workloads::BenchmarkProfile &profile,
             const ExperimentConfig &config)
{
    PhaseTimings build_timings;
    auto program = [&] {
        ScopedTimer timer(build_timings, "build");
        return std::make_shared<const isa::Program>(
            workloads::buildBenchmark(profile,
                                      config.dynamicTarget));
    }();
    RunArtifacts out =
        runProgram(std::move(program), config, profile.name);
    out.seed = profile.seed;
    // The build phase happened first; keep it first in the manifest.
    prependTimings(std::move(build_timings), out);
    return out;
}

RunArtifacts
runBenchmark(const std::string &name, const ExperimentConfig &config)
{
    return runBenchmark(workloads::findProfile(name), config);
}

} // namespace harness
} // namespace ser
