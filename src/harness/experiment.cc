#include "experiment.hh"

#include <sstream>

#include "core/trigger.hh"
#include "cpu/pipeline.hh"
#include "workloads/suite.hh"

namespace ser
{
namespace harness
{

RunArtifacts
runProgram(const isa::Program &program,
           const ExperimentConfig &config, const std::string &name)
{
    RunArtifacts out;
    out.benchmark = name;
    out.program = std::make_shared<isa::Program>(program);

    cpu::PipelineParams params = config.pipeline;
    if (params.maxInsts < config.dynamicTarget * 2)
        params.maxInsts = config.dynamicTarget * 2;

    cpu::InOrderPipeline pipeline(*out.program, params);
    auto policy = core::makeTriggerPolicy(config.triggerLevel,
                                          config.triggerAction);
    pipeline.setExposurePolicy(policy.get());
    pipeline.setWarmupInsts(config.warmupInsts);

    out.trace = pipeline.run();
    out.ipc = out.trace.ipc();

    std::ostringstream stats;
    pipeline.dumpStats(stats);
    policy->dumpStats(stats);
    out.statsDump = stats.str();

    out.deadness = avf::analyzeDeadness(out.trace);
    out.avf = avf::computeAvf(out.trace, out.deadness);
    out.falseDue = core::analyzeFalseDue(out.avf, config.petSize);
    return out;
}

RunArtifacts
runBenchmark(const workloads::BenchmarkProfile &profile,
             const ExperimentConfig &config)
{
    isa::Program program =
        workloads::buildBenchmark(profile, config.dynamicTarget);
    return runProgram(program, config, profile.name);
}

RunArtifacts
runBenchmark(const std::string &name, const ExperimentConfig &config)
{
    return runBenchmark(workloads::findProfile(name), config);
}

} // namespace harness
} // namespace ser
