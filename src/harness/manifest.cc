#include "manifest.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/tracking.hh"
#include "harness/build_info.hh"
#include "harness/disk_cache.hh"
#include "harness/run_cache.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"
#include "sim/trace_event.hh"

namespace ser
{
namespace harness
{

void
writeRunManifest(json::JsonWriter &jw, const RunArtifacts &run,
                 const ExperimentConfig &config)
{
    jw.beginObject();
    jw.kv("benchmark", run.benchmark);
    jw.kv("seed", run.seed);

    // Which exact binary produced this run. Compile-time constants
    // (harness/build_info.hh), so determinism-fixture variants built
    // from the same tree emit identical bytes here.
    {
        const BuildInfo &build = buildInfo();
        jw.key("build_info");
        jw.beginObject();
        jw.kv("git", build.git);
        jw.kv("compiler", build.compiler);
        jw.kv("build_type", build.buildType);
        jw.kv("sanitize", build.sanitize);
        jw.endObject();
    }

    jw.key("config");
    jw.beginObject();
    jw.kv("dynamic_target", config.dynamicTarget);
    jw.kv("warmup_insts", config.warmupInsts);
    jw.kv("trigger_level", config.triggerLevel);
    jw.kv("trigger_action", config.triggerAction);
    jw.kv("pet_size", config.petSize);
    jw.kv("interval_cycles", config.intervalCycles);
    jw.kv("iq_entries", config.pipeline.iqEntries);
    jw.kv("fetch_width", config.pipeline.fetchWidth);
    jw.kv("issue_width", config.pipeline.issueWidth);
    jw.endObject();

    jw.kv("ipc", run.ipc);
    jw.kv("committed_insts", run.trace->committedInsts);
    jw.kv("window_cycles", run.avf->windowCycles);

    // Allocation observability: most DynInst pool slots ever live
    // (deterministic — a pure function of the simulation).
    jw.kv("pool_high_water", run.poolHighWater);

    // Which sections the memoized run cache answered. These values
    // legitimately differ between cache-enabled and --no-run-cache
    // runs (and, under --jobs, with worker scheduling), so the
    // determinism checker masks them like wall-clock timings.
    jw.key("run_cache");
    jw.beginObject();
    jw.kv("sim", cacheOutcomeName(run.cacheSim));
    jw.kv("deadness", cacheOutcomeName(run.cacheDeadness));
    jw.kv("avf", cacheOutcomeName(run.cacheAvf));
    jw.kv("campaign", cacheOutcomeName(run.cacheCampaign));
    jw.endObject();

    jw.key("timings_seconds");
    jw.beginObject();
    for (const auto &phase : run.timings.phases)
        jw.kv(phase.first, phase.second);
    jw.kv("total", run.timings.totalSeconds());
    // Like the phase timings, cycles_skipped is a simulator-speed
    // observation, not a simulated result: it is zero under
    // --no-cycle-skip while everything else in the manifest stays
    // byte-identical. Recording it inside this block keeps it under
    // the determinism checker's existing timing mask.
    jw.kv("cycles_skipped", run.cyclesSkipped);
    jw.endObject();

    const avf::AvfResult &avf = *run.avf;
    jw.key("avf");
    jw.beginObject();
    jw.kv("sdc_avf", avf.sdcAvf());
    jw.kv("sdc_avf_refined", avf.sdcAvfRefined());
    jw.kv("true_due_avf", avf.trueDueAvf());
    jw.kv("false_due_avf", avf.falseDueAvf());
    jw.kv("due_avf", avf.dueAvf());
    jw.kv("idle_fraction", avf.idleFraction());
    jw.kv("ex_ace_fraction", avf.exAceFraction());
    jw.key("un_ace_read");
    jw.beginObject();
    for (int i = 0; i < avf::numUnAceSources; ++i)
        jw.kv(avf::unAceSourceName(
                  static_cast<avf::UnAceSource>(i)),
              avf.unAceRead[i]);
    jw.endObject();
    jw.endObject();

    jw.key("false_due");
    jw.beginObject();
    jw.kv("base_false_due_avf", run.falseDue.baseFalseDueAvf);
    jw.kv("true_due_avf", run.falseDue.trueDueAvf);
    jw.key("residual_false_due");
    jw.beginObject();
    for (int i = 0; i < core::numTrackingLevels; ++i)
        jw.kv(core::trackingLevelName(
                  static_cast<core::TrackingLevel>(i)),
              run.falseDue.residualFalseDue[i]);
    jw.endObject();
    jw.endObject();

    if (config.attributionTopN) {
        const avf::AttributionResult &attr = run.attribution;
        auto histogram = [&](const char *key,
                             const avf::HistogramSummary &h) {
            jw.key(key);
            jw.beginObject();
            jw.kv("count", h.count);
            jw.kv("mean", h.mean);
            jw.kv("p50", h.p50);
            jw.kv("p90", h.p90);
            jw.kv("p99", h.p99);
            jw.endObject();
        };
        jw.key("attribution");
        jw.beginObject();
        jw.kv("static_pcs",
              static_cast<std::uint64_t>(attr.pcs.size()));
        jw.kv("total_ace", attr.totalAce);
        jw.kv("total_un_ace_read", attr.totalUnAceRead);
        jw.kv("total_ex_ace", attr.totalExAce);
        jw.kv("total_squashed_unread", attr.totalSquashedUnread);
        jw.kv("total_incarnations", attr.totalIncarnations);
        jw.kv("total_residency_cycles", attr.totalResidencyCycles);
        histogram("lifetime", attr.lifetime);
        histogram("pre_read", attr.preRead);
        histogram("post_read", attr.postRead);
        jw.key("hotspots");
        jw.beginArray();
        std::size_t n = std::min<std::size_t>(config.attributionTopN,
                                              attr.pcs.size());
        for (std::size_t i = 0; i < n; ++i) {
            const avf::PcAttribution &pc = attr.pcs[i];
            jw.beginObject();
            jw.kv("static_idx", pc.staticIdx);
            jw.kv("pc", isa::Program::indexToAddr(pc.staticIdx));
            jw.kv("disasm",
                  run.program->inst(pc.staticIdx).toString());
            jw.kv("ace", pc.ace);
            jw.kv("ace_share", attr.aceShare(pc));
            jw.kv("un_ace_read", pc.unAceRead);
            jw.kv("ex_ace", pc.exAce);
            jw.kv("squashed_unread", pc.squashedUnread);
            jw.kv("incarnations", pc.incarnations);
            jw.kv("committed", pc.committedIncs);
            jw.kv("residency_cycles", pc.residencyCycles);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }

    if (run.campaign) {
        const faults::CampaignOutcome &c = *run.campaign;
        jw.key("campaign");
        jw.beginObject();
        jw.kv("samples_requested", c.samplesRequested);
        jw.kv("samples_run", c.samplesRun);
        jw.kv("seed", c.seed);
        jw.kv("protection", faults::protectionName(c.protection));
        jw.kv("payload_only", c.payloadOnly);
        jw.kv("ci_target", c.ciTarget);
        jw.kv("batch_samples", c.batchSamples);
        jw.kv("early_stopped", c.earlyStopped);
        jw.kv("ci_half_width", c.ciHalfWidth);
        jw.kv("golden_steps", c.goldenSteps);
        jw.kv("checkpoints", c.checkpoints);
        jw.kv("reruns", c.reruns);
        jw.kv("rerun_steps", c.rerunSteps);
        jw.kv("mean_rerun_fraction", c.meanRerunFraction());
        jw.key("structures");
        jw.beginArray();
        for (const faults::StructureCampaign &s : c.structures) {
            jw.beginObject();
            jw.kv("structure", faults::structureName(s.structure));
            jw.kv("weight_bits", s.weight);
            jw.kv("samples", s.tally.samples);
            jw.key("outcomes");
            jw.beginObject();
            for (int o = 0; o < faults::numOutcomes; ++o)
                jw.kv(faults::outcomeName(
                          static_cast<faults::Outcome>(o)),
                      s.tally.counts[o]);
            jw.endObject();
            jw.kv("sdc_rate", s.sdcRate());
            jw.kv("sdc_ci_lo", s.sdcCi.lo);
            jw.kv("sdc_ci_hi", s.sdcCi.hi);
            jw.kv("analytical_sdc", s.analyticalSdc);
            jw.kv("analytical_sdc_lower", s.analyticalSdcLower);
            jw.kv("sdc_covered", s.sdcCovered);
            jw.kv("due_rate", s.dueRate());
            jw.kv("due_ci_lo", s.dueCi.lo);
            jw.kv("due_ci_hi", s.dueCi.hi);
            jw.kv("analytical_due", s.analyticalDue);
            jw.kv("analytical_due_lower", s.analyticalDueLower);
            jw.kv("due_covered", s.dueCovered);
            jw.endObject();
        }
        jw.endArray();
        if (!c.rootCauses.empty()) {
            jw.key("root_causes");
            jw.beginArray();
            for (const faults::RootCause &rc : c.rootCauses) {
                jw.beginObject();
                jw.kv("static_idx", rc.staticIdx);
                jw.kv("pc",
                      isa::Program::indexToAddr(rc.staticIdx));
                jw.kv("disasm",
                      run.program->inst(rc.staticIdx).toString());
                jw.kv("sdc_injections", rc.sdcInjections);
                jw.kv("measured_share", rc.measuredShare);
                jw.kv("analytical_ace_share",
                      rc.analyticalAceShare);
                jw.endObject();
            }
            jw.endArray();
        }
        jw.endObject();
    }

    jw.key("stats");
    if (run.statsJson.empty())
        jw.nullValue();
    else
        jw.rawValue(run.statsJson);

    jw.key("intervals");
    jw.beginObject();
    jw.kv("interval_cycles", config.intervalCycles);
    jw.kv("epochs", static_cast<std::uint64_t>(
                        run.intervals.size()));
    jw.endObject();

    jw.endObject();
}

void
JsonReport::setArgs(const Config &config)
{
    _args = config.items();
}

void
JsonReport::addRun(const RunArtifacts &run,
                   const ExperimentConfig &config)
{
    std::ostringstream os;
    {
        json::JsonWriter jw(os);
        writeRunManifest(jw, run, config);
    }
    _runs.push_back(os.str());

    // One compact JSONL line per epoch: the sampler's counters
    // merged (by index — the grids share size and anchor) with the
    // post-hoc per-epoch ACE fold.
    for (std::size_t i = 0; i < run.intervals.size(); ++i) {
        std::ostringstream line;
        json::JsonWriter jw(line, 0);
        const cpu::IntervalSample &s = run.intervals[i];
        jw.beginObject();
        jw.kv("benchmark", run.benchmark);
        jw.kv("epoch", static_cast<std::uint64_t>(i));
        jw.kv("start_cycle", s.startCycle);
        jw.kv("end_cycle", s.endCycle);
        jw.kv("cycles", s.cycles());
        jw.kv("committed", s.committed);
        jw.kv("ipc", s.ipc());
        jw.kv("fetched", s.fetched);
        jw.kv("mispredicts", s.mispredicts);
        jw.kv("trigger_squashes", s.triggerSquashes);
        jw.kv("trigger_squashed_insts", s.triggerSquashedInsts);
        jw.kv("iq_valid_entry_cycles", s.iqValidEntryCycles);
        jw.kv("iq_waiting_entry_cycles", s.iqWaitingEntryCycles);
        jw.kv("avg_iq_occupancy", s.avgIqOccupancy());
        if (i < run.avf->epochs.size()) {
            const avf::EpochAce &e = run.avf->epochs[i];
            jw.kv("occupied_bit_cycles", e.occupied);
            jw.kv("ace_bit_cycles", e.ace);
            jw.kv("un_ace_read_bit_cycles", e.unAceRead);
        }
        jw.endObject();
        _intervalLines.push_back(line.str());
    }
}

void
JsonReport::addTable(const std::string &name, const Table &table)
{
    std::ostringstream os;
    {
        json::JsonWriter jw(os);
        jw.beginObject();
        jw.key("headers");
        jw.beginArray();
        for (const auto &header : table.headers())
            jw.value(header);
        jw.endArray();
        jw.key("rows");
        jw.beginArray();
        for (const auto &row : table.rows()) {
            jw.beginArray();
            for (const auto &cell : row)
                jw.value(cell);
            jw.endArray();
        }
        jw.endArray();
        jw.endObject();
    }
    _tables.emplace_back(name, os.str());
}

std::string
JsonReport::intervalsPath(const std::string &json_path)
{
    std::string stem = json_path;
    const std::string ext = ".json";
    if (stem.size() > ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0)
        stem.resize(stem.size() - ext.size());
    return stem + ".intervals.jsonl";
}

void
JsonReport::write(const std::string &path) const
{
    SER_PROF_SCOPE("manifest_write");
    std::ofstream os(path);
    if (!os)
        SER_FATAL("manifest: cannot open '{}' for writing", path);

    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema_version", 1);
    jw.key("args");
    jw.beginObject();
    for (const auto &arg : _args)
        jw.kv(arg.first, arg.second);
    jw.endObject();
    jw.key("tables");
    jw.beginObject();
    for (const auto &table : _tables) {
        jw.key(table.first);
        jw.rawValue(table.second);
    }
    jw.endObject();
    jw.key("runs");
    jw.beginArray();
    for (const auto &run : _runs)
        jw.rawValue(run);
    jw.endArray();
    // Process-wide run-cache totals at manifest-write time (every
    // run above has completed by now). Values inside a "run_cache"
    // object are masked by the determinism checker, like the per-run
    // outcome blocks; the counts themselves are schedule-independent
    // anyway (one miss per distinct key).
    {
        RunCache &cache = RunCache::instance();
        jw.key("run_cache");
        jw.beginObject();
        jw.kv("enabled", cache.enabled());
        jw.kv("disk_enabled", DiskCache::instance().enabled());
        auto section = [&jw](const char *name,
                             const RunCache::Counters &c) {
            jw.key(name);
            jw.beginObject();
            jw.kv("hits", c.hits);
            jw.kv("disk_hits", c.diskHits);
            jw.kv("misses", c.misses);
            jw.kv("evictions", c.evictions);
            jw.kv("bytes", c.bytes);
            jw.kv("disk_bytes_read", c.diskBytesRead);
            jw.kv("disk_bytes_written", c.diskBytesWritten);
            jw.kv("disk_corrupt", c.diskCorrupt);
            jw.endObject();
        };
        section("sim", cache.simCounters());
        section("deadness", cache.deadnessCounters());
        section("avf", cache.avfCounters());
        section("campaign", cache.campaignCounters());
        jw.endObject();
    }
    if (!_intervalLines.empty())
        jw.kv("intervals_file", intervalsPath(path));
    jw.endObject();
    os << "\n";
    if (!os)
        SER_FATAL("manifest: write to '{}' failed", path);

    if (_intervalLines.empty())
        return;
    std::ofstream jl(intervalsPath(path));
    if (!jl)
        SER_FATAL("manifest: cannot open '{}' for writing",
                  intervalsPath(path));
    for (const auto &line : _intervalLines)
        jl << line << "\n";
}

void
writeConvergenceJsonl(const std::string &path,
                      const std::vector<RunArtifacts> &runs)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        SER_FATAL("convergence: cannot open '{}' for writing", path);
    for (const RunArtifacts &run : runs) {
        if (!run.campaign)
            continue;
        const faults::CampaignOutcome &campaign = *run.campaign;
        for (const faults::ConvergencePoint &point :
             campaign.convergence) {
            std::ostringstream line;
            {
                json::JsonWriter jw(line, 0);
                jw.beginObject();
                jw.kv("benchmark", run.benchmark);
                jw.kv("protection",
                      faults::protectionName(campaign.protection));
                jw.kv("seed", campaign.seed);
                jw.kv("batch", point.batch);
                jw.kv("samples", point.samples);
                jw.kv("worst_ci_half_width", point.worstHalfWidth);
                jw.key("structures");
                jw.beginArray();
                for (const auto &s : point.structures) {
                    jw.beginObject();
                    jw.kv("structure",
                          faults::structureName(s.structure));
                    jw.kv("samples", s.samples);
                    jw.kv("sdc_rate", s.sdcRate);
                    jw.kv("sdc_ci_half_width", s.sdcHalfWidth);
                    jw.kv("due_rate", s.dueRate);
                    jw.kv("due_ci_half_width", s.dueHalfWidth);
                    jw.endObject();
                }
                jw.endArray();
                jw.endObject();
            }
            os << line.str() << "\n";
        }
    }
    if (!os)
        SER_FATAL("convergence: write to '{}' failed", path);
}

void
writeTraceEventsFile(const std::string &path,
                     const std::vector<RunArtifacts> &runs)
{
    SER_PROF_SCOPE("trace_write");
    std::vector<const std::string *> fragments;
    fragments.reserve(runs.size());
    for (const RunArtifacts &run : runs)
        fragments.push_back(&run.traceEvents);
    std::ofstream os(path, std::ios::binary);
    if (!os)
        SER_FATAL("trace: cannot open '{}' for writing", path);
    trace::writeChromeTrace(os, fragments);
    if (!os)
        SER_FATAL("trace: write to '{}' failed", path);
}

void
TraceExport::emit(std::ostream &os,
                  const std::vector<RunArtifacts> &runs) const
{
    if (!_path.empty()) {
        writeTraceEventsFile(_path, runs);
        os << "\ntrace events written to " << _path << " ("
           << runs.size() << " runs)\n";
    }
    if (!_topn)
        return;
    for (const RunArtifacts &run : runs) {
        printHeading(os, "AVF hotspots: " + run.benchmark);
        if (_csv)
            avf::writeHotspotCsv(os, run.attribution, *run.program,
                                 _topn);
        else
            avf::printHotspots(os, run.attribution, *run.program,
                               _topn);
    }
}

void
TraceExport::warnUnsupported(const BenchOptions &opts)
{
    if (!opts.traceEventsPath.empty())
        SER_WARN("--trace-events is not supported by this bench "
                 "(it runs outside the experiment harness); no "
                 "trace will be written");
    if (opts.topn)
        SER_WARN("--topn is not supported by this bench (it runs "
                 "outside the experiment harness); no hotspot "
                 "table will be printed");
}

} // namespace harness
} // namespace ser
