#include "shutdown.hh"

#include <csignal>
#include <mutex>
#include <thread>

#include "harness/metrics.hh"

namespace ser
{
namespace harness
{

namespace
{

void
watchSignals(sigset_t set)
{
    int sig = 0;
    if (sigwait(&set, &sig) != 0)
        return;

    // Normal thread context: locks and allocation are fine here.
    // writeSnapshot keeps the temp+rename discipline, so a reader
    // racing the shutdown still sees a complete document.
    MetricsRegistry::instance().writeSnapshot();

    // Die by the signal we intercepted so the parent observes the
    // conventional wait status. Restore default disposition and
    // unblock it in this thread first.
    std::signal(sig, SIG_DFL);
    sigset_t unblock;
    sigemptyset(&unblock);
    sigaddset(&unblock, sig);
    pthread_sigmask(SIG_UNBLOCK, &unblock, nullptr);
    raise(sig);
}

} // namespace

void
installShutdownFlush()
{
    static std::once_flag once;
    std::call_once(once, [] {
        sigset_t set;
        sigemptyset(&set);
        sigaddset(&set, SIGINT);
        sigaddset(&set, SIGTERM);
        // Block in the installing (main) thread; every thread
        // spawned later inherits the mask, so only the watcher ever
        // receives these signals.
        if (pthread_sigmask(SIG_BLOCK, &set, nullptr) != 0)
            return;
        std::thread(watchSignals, set).detach();
    });
}

} // namespace harness
} // namespace ser
