/**
 * @file
 * The embedded live-telemetry HTTP server (--serve PORT): continuous
 * queryable introspection of a running sweep, and the substrate the
 * ROADMAP item-2 persistent sweep service will mount its request
 * handlers on.
 *
 * Endpoints (all GET, HTTP/1.1, Connection: close per request):
 *
 *   /healthz        liveness probe ("ok")
 *   /metrics        live Prometheus exposition, rendered on demand
 *                   from MetricsRegistry::renderExposition() — a
 *                   scraper pulls instead of waiting for the
 *                   exit/epoch file snapshot
 *   /status         JSON sweep state: done/total, runs/s, ETA, cache
 *                   hit rate — the same numbers the --progress line
 *                   paints, via Progress::snapshot()
 *   /runs           JSON index of completed runs (benchmark, ipc)
 *   /runs/<index>   the full JSON manifest of one completed run
 *   /campaign       per-structure live Wilson-CI convergence: the
 *                   most recent ConvergencePoints published by
 *                   running campaigns (bounded ring)
 *
 * Retention: /runs keeps the most recent runsRingCapacity manifests
 * (FIFO by submission index); older ones are evicted and counted in
 * /status (runs_published / runs_retained / runs_evicted), so a
 * million-run sweep holds a bounded window instead of every
 * manifest.
 *
 * Mounting: a process can install one RequestHandler
 * (setRequestHandler) that is consulted for any request the
 * built-in routes do not claim — including non-GET methods — which
 * is how the sweep daemon (harness/sweep_service.hh) mounts its
 * POST /sweep API on this poll loop without the server knowing
 * about sweeps.
 *
 * Implementation: dependency-free POSIX sockets, bound to 127.0.0.1
 * only, one poll(2)-driven thread owned by the server, a bounded
 * connection table, an 8 KiB request-header cap and a 1 MiB body
 * cap (oversized requests are dropped), GET-only unless a handler
 * claims the method (405 otherwise), 400 on malformed request
 * lines, 404 on unknown paths. POST bodies are read to the
 * Content-Length before dispatch.
 *
 * Determinism contract: the server only ever *reads* snapshots taken
 * under the owning components' existing locks (MetricsRegistry's
 * mutex, Progress's atomics, this class's own publish mutex). It
 * never writes into simulation state, never touches stdout, and the
 * publish hooks (publishRun / publishCampaignPoint) copy data that
 * the determinism fixtures already prove byte-identical — so running
 * with --serve on vs off cannot perturb manifests, stdout, or
 * campaign results (tests/telemetry_* fixtures assert exactly this).
 *
 * Like every singleton the atexit machinery may observe, instance()
 * is a leaked heap object (DESIGN.md §10); tests construct private
 * instances on ephemeral ports instead.
 */

#ifndef SER_HARNESS_TELEMETRY_SERVER_HH
#define SER_HARNESS_TELEMETRY_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "faults/campaign_engine.hh"

namespace ser
{
namespace harness
{

/** See file comment. All public methods are thread-safe. */
class TelemetryServer
{
  public:
    TelemetryServer() = default;
    ~TelemetryServer();
    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /** The process-wide server --serve arms (leaked, see file
     * comment). */
    static TelemetryServer &instance();

    /** Most ConvergencePoints the /campaign ring retains. */
    static constexpr std::size_t campaignRingCapacity = 4096;
    /** Most published runs /runs retains (FIFO by submission
     * index); older manifests evict and are counted in /status. */
    static constexpr std::size_t runsRingCapacity = 256;
    /** Request-header cap: connections that exceed it are closed. */
    static constexpr std::size_t maxHeaderBytes = 8192;
    /** Request-body cap (Content-Length beyond it answers 400). */
    static constexpr std::size_t maxBodyBytes = 1 << 20;
    /** Concurrent-connection bound (excess connects wait in the
     * listen backlog). */
    static constexpr std::size_t maxConnections = 16;

    /**
     * Bind 127.0.0.1:port, start the poll thread. port 0 binds an
     * ephemeral port (tests); port() reports the bound one. Fatal on
     * bind failure (a user-visible --serve configuration error).
     */
    void start(std::uint16_t port);

    /** Join the poll thread and close every socket. Idempotent. */
    void stop();

    bool running() const { return _running.load(); }
    std::uint16_t port() const { return _port; }

    /** Publish one completed run for /runs. `index` is the sweep
     * submission index; `manifest` is the serialized run-manifest
     * JSON (may be empty for runs outside the experiment harness —
     * /runs/<index> then serves the summary fields only). */
    void publishRun(std::size_t index, const std::string &benchmark,
                    double ipc, std::string manifest);

    /** Publish one campaign convergence point for /campaign (called
     * from the CampaignEngine onConvergence hook, miss path only —
     * mirroring the ser_campaign_* metrics convention). */
    void publishCampaignPoint(const std::string &benchmark,
                              const std::string &protection,
                              const faults::ConvergencePoint &point);

    /** One response, socket-free — what the poll loop sends and what
     * the unit tests drive directly. */
    struct Response
    {
        int status = 200;
        std::string contentType = "text/plain; charset=utf-8";
        std::string body;
    };

    /**
     * Mounted request handler: consulted (query string stripped)
     * for any request the built-in routes do not claim, including
     * non-GET methods. Return status 0 to decline, and the server
     * answers 404/405 as if no handler were mounted. The handler
     * runs on the poll thread and must not block indefinitely.
     */
    using RequestHandler = std::function<Response(
        std::string_view method, std::string_view path,
        const std::string &body)>;
    void setRequestHandler(RequestHandler handler);

    Response handle(std::string_view method,
                    std::string_view target) const;
    Response handle(std::string_view method, std::string_view target,
                    const std::string &body) const;

    /**
     * Parse one buffered request. Returns 1 and fills method/target
     * (and *body, when requested, with exactly Content-Length
     * bytes) once a complete, well-formed request is present; 0
     * when more bytes are needed (incomplete head or body); -1 when
     * malformed or over the body cap (the caller answers 400).
     * Exposed for the unit tests.
     */
    static int parseRequest(const std::string &buffer,
                            std::string *method,
                            std::string *target,
                            std::string *body = nullptr);

  private:
    struct Connection
    {
        int fd = -1;
        std::string buffer;
    };

    struct PublishedRun
    {
        std::string benchmark;
        double ipc = 0.0;
        std::string manifest;
    };

    struct CampaignSample
    {
        std::uint64_t seq = 0;  ///< monotonic publish counter
        std::string benchmark;
        std::string protection;
        faults::ConvergencePoint point;
    };

    void loop();
    static void sendResponse(int fd, const Response &response);

    std::string statusJson() const;
    std::string runsIndexJson() const;
    std::string campaignJson() const;

    std::atomic<bool> _running{false};
    std::atomic<bool> _stopRequested{false};
    std::uint16_t _port = 0;
    int _listenFd = -1;
    int _wakePipe[2] = {-1, -1};
    std::thread _thread;
    std::chrono::steady_clock::time_point _started;

    mutable std::mutex _publishLock;
    std::map<std::size_t, PublishedRun> _runs;
    std::uint64_t _runsPublished = 0;
    std::uint64_t _runsEvicted = 0;
    std::deque<CampaignSample> _campaignRing;
    std::uint64_t _campaignSeq = 0;
    std::uint64_t _campaignDropped = 0;

    mutable std::mutex _handlerLock;
    RequestHandler _handler;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_TELEMETRY_SERVER_HH
