/**
 * @file
 * The parallel suite runner: (benchmark x configuration) jobs on a
 * fixed worker pool, with deterministic aggregation.
 *
 * Every bench binary reproduces a paper table by sweeping the
 * 26-benchmark surrogate suite across several design points. The
 * experiments are deterministic and self-contained (DESIGN.md §6),
 * so they are embarrassingly parallel; this runner executes them on
 * `--jobs N` std::thread workers while keeping every observable
 * output byte-identical to the serial run:
 *
 *  - results are collected into a vector indexed by submission
 *    order, so tables, suite averages and JSON manifests do not
 *    depend on scheduling;
 *  - each surrogate program is built at most once (by whichever
 *    worker first needs it) and shared read-only across that
 *    benchmark's design points via the shared_ptr overload of
 *    runProgram();
 *  - the one-time build phase is recorded in exactly one manifest
 *    run per program — the first-submitted one — regardless of
 *    which worker performed the build.
 *
 * The default is serial (`--jobs 1`), overridable per invocation
 * with `--jobs N` or process-wide with the SER_JOBS environment
 * variable.
 */

#ifndef SER_HARNESS_SUITE_RUNNER_HH
#define SER_HARNESS_SUITE_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/profile.hh"

namespace ser
{
namespace harness
{

/** The worker count used when a bench is not told otherwise:
 * SER_JOBS from the environment (fatal if not a positive integer),
 * else 1 (serial — the legacy behaviour). */
unsigned defaultJobs();

/**
 * Run fn(i) for every i in [0, n) on up to 'jobs' workers (the
 * calling thread is one of them; jobs == 0 means defaultJobs()).
 * fn must be safe to call concurrently for distinct indices. An
 * exception thrown by fn is re-thrown on the calling thread after
 * all workers drain.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/** Executes queued (benchmark x config) experiments on a worker
 * pool; see the file comment for the determinism guarantees. */
class SuiteRunner
{
  public:
    /** jobs == 0 selects defaultJobs(); 1 runs serially inline. */
    explicit SuiteRunner(unsigned jobs = 0);

    /**
     * Register a surrogate to be built (at most once) when the
     * first run needing it executes. Returns a program id for
     * submit(). The build's wall-clock is attached to the
     * first-submitted run of this program.
     */
    std::size_t addProgram(const workloads::BenchmarkProfile &profile,
                           std::uint64_t dynamicTarget);

    /** As above, by suite name ("mcf", "ammp", ...). */
    std::size_t addProgram(const std::string &name,
                           std::uint64_t dynamicTarget);

    /** Queue one design point against a registered program. The
     * result carries the profile's name and seed. Returns the
     * run's submission index. */
    std::size_t submit(std::size_t program_id,
                       ExperimentConfig config);

    /** Queue an arbitrary job (for benches whose per-benchmark work
     * is not a plain runProgram call). */
    std::size_t submit(std::function<RunArtifacts()> job);

    /** Execute every queued job; results are indexed by submission
     * order. May be called once per runner. */
    std::vector<RunArtifacts> run();

    unsigned jobs() const { return _jobs; }

    /** Label shown by the --progress line (conventionally the bench
     * name); set before run(). */
    void setLabel(std::string label) { _label = std::move(label); }

  private:
    /** One surrogate program, built lazily by the first worker that
     * needs it and shared read-only afterwards. */
    struct SharedProgram
    {
        workloads::BenchmarkProfile profile;
        std::uint64_t dynamicTarget = 0;
        std::once_flag built;
        std::shared_ptr<const isa::Program> program;
        PhaseTimings buildTimings;
        /** Submission index whose manifest run records the build
         * phase (the first submitted for this program). */
        std::size_t firstRun = kNone;
    };

    struct Job
    {
        std::size_t programId = kNone;  ///< kNone for generic jobs
        ExperimentConfig config;
        std::function<RunArtifacts()> fn;
    };

    static constexpr std::size_t kNone = ~std::size_t{0};

    unsigned _jobs;
    std::string _label;
    std::vector<std::unique_ptr<SharedProgram>> _programs;
    std::vector<Job> _queue;
    bool _ran = false;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_SUITE_RUNNER_HH
