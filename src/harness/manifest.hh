/**
 * @file
 * Structured run manifests: one JSON document per bench invocation.
 *
 * A manifest captures everything needed to interpret (and re-run) an
 * experiment: the binary's arguments, each run's configuration and
 * generator seed, per-phase wall-clock timings, the full statistics
 * tree, the derived AVF/false-DUE metrics, and the paper-style
 * result tables. When interval sampling is on, the per-epoch time
 * series (IPC, queue occupancy, squash counts, and the per-epoch
 * ACE-cycle fold) is written as a sibling JSONL file —
 * '<manifest>.intervals.jsonl' — one JSON object per epoch per run.
 *
 * Layout:
 *
 *   {
 *     "schema_version": 1,
 *     "args": { "key": "value", ... },
 *     "tables": { "name": {"headers": [...], "rows": [[...]]} },
 *     "runs": [ { benchmark, seed, config, ipc, timings_seconds,
 *                 avf, false_due, stats, intervals }, ... ],
 *     "intervals_file": "out.intervals.jsonl"   // when sampling
 *   }
 */

#ifndef SER_HARNESS_MANIFEST_HH
#define SER_HARNESS_MANIFEST_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/bench_options.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "sim/config.hh"

namespace ser
{

namespace json
{
class JsonWriter;
}

namespace harness
{

/** Emit one run (artifacts + its configuration) as a JSON object. */
void writeRunManifest(json::JsonWriter &jw, const RunArtifacts &run,
                      const ExperimentConfig &config);

/**
 * Write the per-batch campaign convergence time-series of every run
 * that carried a campaign as JSONL at 'path' (--convergence-out):
 * one object per (run, batch) in submission order — deterministic,
 * because CampaignOutcome::convergence is itself a campaign result
 * (see faults::ConvergencePoint). Runs without campaigns are
 * skipped; an empty series still truncates/creates the file so a
 * stale one never survives.
 */
void writeConvergenceJsonl(const std::string &path,
                           const std::vector<RunArtifacts> &runs);

/**
 * Collects runs and tables while a bench executes, then writes the
 * manifest (and the sibling interval JSONL) in one go. Runs are
 * serialized at addRun() time so the heavyweight artifacts can be
 * dropped between runs.
 */
class JsonReport
{
  public:
    /** Record the binary's parsed key=value arguments. */
    void setArgs(const Config &config);

    /** Serialize one run into the manifest; also folds its interval
     * time series (merged with the per-epoch ACE fold) into the
     * JSONL buffer. */
    void addRun(const RunArtifacts &run,
                const ExperimentConfig &config);

    /** Serialize a result table into the manifest. */
    void addTable(const std::string &name, const Table &table);

    /** Write the manifest to 'path' (and '<stem>.intervals.jsonl'
     * next to it when any run carried samples). */
    void write(const std::string &path) const;

    /** The sibling JSONL path write() uses for a manifest path. */
    static std::string intervalsPath(const std::string &json_path);

  private:
    std::vector<std::pair<std::string, std::string>> _args;
    std::vector<std::string> _runs;    ///< serialized run objects
    std::vector<std::pair<std::string, std::string>> _tables;
    std::vector<std::string> _intervalLines;  ///< JSONL, all runs
};

/**
 * Merge the per-run trace fragments (in submission order, which is
 * deterministic under --jobs) into one Chrome trace document at
 * 'path'. Runs without a fragment are skipped.
 */
void writeTraceEventsFile(const std::string &path,
                          const std::vector<RunArtifacts> &runs);

/**
 * Applies the --trace-events / --topn options across a sweep: hands
 * out one trace pid per submitted run (so merged traces keep runs on
 * separate process rows), then writes the merged trace file and
 * prints the per-run hotspot tables once the sweep finishes.
 *
 *   harness::TraceExport trace_export(opts);
 *   for (...) { trace_export.configure(cfg); runner.submit(..., cfg); }
 *   auto runs = runner.run();
 *   trace_export.emit(std::cout, runs);
 */
class TraceExport
{
  public:
    explicit TraceExport(const BenchOptions &opts)
        : _path(opts.traceEventsPath), _topn(opts.topn),
          _csv(opts.csv)
    {
    }

    /** Stamp the next submitted run's trace pid / attribution. */
    void configure(ExperimentConfig &config)
    {
        config.traceEventsPid = _path.empty() ? 0 : _nextPid++;
        config.attributionTopN = _topn;
    }

    /** Write the trace file and print the hotspot tables. */
    void emit(std::ostream &os,
              const std::vector<RunArtifacts> &runs) const;

    /** For benches that run the pipeline outside the experiment
     * harness: warn that --trace-events / --topn have no effect
     * here instead of silently dropping them. */
    static void warnUnsupported(const BenchOptions &opts);

  private:
    std::string _path;
    std::uint32_t _topn;
    bool _csv;
    std::uint32_t _nextPid = 1;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_MANIFEST_HH
