/**
 * @file
 * The memoized run cache: content-addressed sharing of simulation
 * traces and post-hoc analyses across sweep points.
 *
 * Every figure and table in the paper sweeps a post-commit parameter
 * (PET size, π granularity, anti-π roster, attribution depth) over
 * the same committed instruction stream; only the post-commit fold
 * differs between sweep points. The cache keys a finished simulation
 * by the *content* of its inputs — a hash of the program image plus
 * every timing-relevant parameter — so sweep points whose timing
 * behaviour is provably identical simulate once and analyze once per
 * process, and merely share `shared_ptr<const ...>` artifacts
 * afterwards.
 *
 * Three sections, each keyed by an exact (collision-free modulo the
 * 64-bit program hash) string:
 *
 *   sim       (program content, effective PipelineParams, trigger
 *              policy, warmup, interval grid)    → SimProducts
 *   deadness  (sim key, deadness options)        → DeadnessResult
 *   avf       (sim key; the epoch grid is already in the sim key)
 *                                                → AvfResult
 *   campaign  (sim key + every semantic campaign knob)
 *                                                → CampaignOutcome
 *
 * Thread-safety: lookups run concurrently under --jobs. The first
 * thread to miss computes the value under a per-entry once_flag;
 * late arrivals for the same key block on that flag and then share
 * the result, so a sweep never simulates the same point twice even
 * when two workers race to it. Eviction is FIFO with a settable
 * per-section capacity (default unlimited — a full suite sweep is
 * tens of MB per benchmark, freed when the process exits).
 *
 * Persistent tier: with `--cache-dir DIR` (or SER_CACHE_DIR), a miss
 * in the process-local map falls through to the content-addressed
 * blob store (harness/disk_cache.hh) before computing, and every
 * computed value is published back. Warm re-runs of an identical
 * sweep then skip simulation entirely across *processes* — the tier
 * the sweep daemon answers repeat queries from. Outputs are
 * byte-identical with the tier cold, warm, or absent.
 *
 * Escape hatch: `--no-run-cache` (BenchOptions) disables the cache
 * process-wide; outputs are byte-identical either way, which
 * tests/check_determinism.cc enforces.
 */

#ifndef SER_HARNESS_RUN_CACHE_HH
#define SER_HARNESS_RUN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "cpu/params.hh"
#include "cpu/sampler.hh"
#include "cpu/trace.hh"
#include "faults/campaign_engine.hh"
#include "isa/program.hh"

namespace ser
{
namespace harness
{

struct ExperimentConfig;

/** How one cache section answered for one run (manifest
 * observability; "off" covers --no-run-cache and trace-event runs,
 * which need a live pipeline). "disk_hit" means the process-local
 * map missed but the persistent tier (--cache-dir) supplied the
 * value; subsequent lookups in the same process are plain hits. */
enum class CacheOutcome
{
    Off,
    Miss,
    Hit,
    DiskHit,
};

const char *cacheOutcomeName(CacheOutcome outcome);

/**
 * Everything one pipeline simulation produces, bundled so a cache
 * hit reproduces the full miss result (stats text included) and so
 * the trace's program pointer stays valid: the bundle owns the
 * program the pipeline ran.
 */
struct SimProducts
{
    std::shared_ptr<const isa::Program> program;
    cpu::SimTrace trace;
    double ipc = 0.0;
    std::string statsDump;
    std::string statsJson;
    std::vector<cpu::IntervalSample> intervals;
    std::uint64_t poolHighWater = 0;

    /** Cycles the event-driven scheduler fast-forwarded (0 under
     * --no-cycle-skip; every simulated result is identical). */
    std::uint64_t cyclesSkipped = 0;
};

/** The process-wide memoization cache (see the file comment). */
class RunCache
{
  public:
    static RunCache &instance();

    /** Master switch (--no-run-cache). Disabled lookups are not
     * routed here at all; runProgram computes directly. */
    void setEnabled(bool on) { _enabled.store(on); }
    bool enabled() const { return _enabled.load(); }

    /** Max entries retained per section; inserting beyond evicts
     * FIFO (in-flight results stay alive via their shared_ptr).
     * 0 = unlimited (the default). */
    void setCapacity(std::size_t entries);

    /** Drop every entry and zero the counters (tests). */
    void clear();

    struct Counters
    {
        /** Memory-tier hits: the key was already in the process-
         * local map. */
        std::uint64_t hits = 0;
        /** Disk-tier hits: the map missed but a verified blob under
         * --cache-dir supplied the value. */
        std::uint64_t diskHits = 0;
        /** Full misses: computed fresh (neither tier answered). */
        std::uint64_t misses = 0;
        /** Entries dropped by the FIFO capacity bound (0 with the
         * default unlimited capacity; deterministic regardless —
         * every insert beyond capacity evicts exactly one). */
        std::uint64_t evictions = 0;
        /** Approximate bytes retained by the entries currently in
         * the section (summed at query time, so it reflects
         * evictions). */
        std::uint64_t bytes = 0;
        /** Disk-tier traffic: blob payload bytes deserialized on
         * disk hits / full blob bytes published on misses. */
        std::uint64_t diskBytesRead = 0;
        std::uint64_t diskBytesWritten = 0;
        /** Blobs rejected by the integrity checks (CRC/framing/
         * decode) and quarantined; each also counts as a miss. */
        std::uint64_t diskCorrupt = 0;
    };

    Counters simCounters() const;
    Counters deadnessCounters() const;
    Counters avfCounters() const;
    Counters campaignCounters() const;

    std::shared_ptr<const SimProducts>
    getSim(const std::string &key,
           const std::function<SimProducts()> &compute,
           CacheOutcome *outcome = nullptr);

    /** Warm probe: true when the sim section's map already holds a
     * *resolved* entry for 'key' (the sweep daemon answers such
     * queries inline instead of scheduling them). Never blocks on an
     * in-flight computation. */
    bool hasSim(const std::string &key) const;

    std::shared_ptr<const avf::DeadnessResult>
    getDeadness(const std::string &key,
                const std::function<avf::DeadnessResult()> &compute,
                CacheOutcome *outcome = nullptr);

    std::shared_ptr<const avf::AvfResult>
    getAvf(const std::string &key,
           const std::function<avf::AvfResult()> &compute,
           CacheOutcome *outcome = nullptr);

    std::shared_ptr<const faults::CampaignOutcome>
    getCampaign(
        const std::string &key,
        const std::function<faults::CampaignOutcome()> &compute,
        CacheOutcome *outcome = nullptr);

    /** FNV-1a over the canonical encoding of every instruction, the
     * data initialisers and the entry point: equal-content programs
     * hash equal regardless of object identity. */
    static std::uint64_t programHash(const isa::Program &program);

    /**
     * The sim-section key: program content plus every parameter that
     * can change the timing trace (effective_params must be the
     * post-adjustment PipelineParams the pipeline actually runs
     * with). Post-commit knobs — petSize, attributionTopN,
     * traceEventsPid — are deliberately absent: that is the whole
     * point of the cache.
     */
    static std::string simKey(const isa::Program &program,
                              const ExperimentConfig &config,
                              const cpu::PipelineParams &
                                  effective_params);

    /** Same key from a precomputed programHash(): lets a caller that
     * probes many configs of one program (the sweep daemon) hash the
     * program image once instead of per request — the hash walks
     * every data initialiser, which for large-working-set surrogates
     * is millions of entries. */
    static std::string simKey(std::uint64_t program_hash,
                              const ExperimentConfig &config,
                              const cpu::PipelineParams &
                                  effective_params);

    /** Deadness is a pure function of the trace; options is reserved
     * for future analysis variants. */
    static std::string deadnessKey(const std::string &sim_key,
                                   const std::string &options = "");

    /** The AVF fold's epoch grid rides in the sim key already. */
    static std::string avfKey(const std::string &sim_key);

    /** The campaign section key: the sim key (the trace the sites
     * are sampled from) plus every semantic campaign knob — two
     * configs differing in any knob that could change a sampled
     * site or its classification never share an entry. */
    static std::string campaignKey(const std::string &sim_key,
                                   const faults::CampaignSpec &spec);

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<void> value;
        /** approxBytes() of the value, stored by the computing
         * thread; atomic so counters() can read it without joining
         * the once_flag. */
        std::atomic<std::uint64_t> bytes{0};
        /** How the once-lambda resolved the value (a CacheOutcome:
         * DiskHit or Miss), so the inserting thread can report the
         * true source even if a racer ran the lambda. */
        std::atomic<int> source{0};
    };

    struct Section
    {
        /** Disk-tier subdirectory name ("sim", "deadness", ...). */
        const char *name = "";
        mutable std::mutex lock;
        std::unordered_map<std::string, std::shared_ptr<Entry>> map;
        std::deque<std::string> fifo;
        Counters counters;
    };

    RunCache();

    template <typename T>
    std::shared_ptr<const T> get(Section &section,
                                 const std::string &key,
                                 const std::function<T()> &compute,
                                 CacheOutcome *outcome);

    static Counters sectionCounters(const Section &section);

    std::atomic<bool> _enabled{true};
    std::atomic<std::size_t> _capacity{0};
    Section _sim;
    Section _deadness;
    Section _avf;
    Section _campaign;
};

/** Approximate retained footprint of a cached value: sizeof the
 * struct plus its containers' element storage. Used for the
 * per-section bytes counters. */
std::uint64_t approxBytes(const SimProducts &products);
std::uint64_t approxBytes(const avf::DeadnessResult &result);
std::uint64_t approxBytes(const avf::AvfResult &result);
std::uint64_t approxBytes(const faults::CampaignOutcome &outcome);

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_RUN_CACHE_HH
