/**
 * @file
 * Build provenance for telemetry and manifests: which exact binary
 * produced a measurement. The values are baked in at configure time
 * by src/harness/CMakeLists.txt (git describe, compiler id, build
 * type, SER_SANITIZE) and surface in two places:
 *
 *  - the `ser_build_info` Prometheus gauge (value always 1, the
 *    metadata rides in the labels — the node-exporter idiom);
 *  - a `build_info` object in every JSON run manifest.
 *
 * Determinism: the values are compile-time constants, so every
 * variant of a determinism fixture built from the same tree emits
 * byte-identical build_info blocks.
 */

#ifndef SER_HARNESS_BUILD_INFO_HH
#define SER_HARNESS_BUILD_INFO_HH

namespace ser
{
namespace harness
{

/** Compile-time build provenance (see file comment). */
struct BuildInfo
{
    const char *git;       ///< `git describe --always --dirty`
    const char *compiler;  ///< compiler id + version
    const char *buildType; ///< CMAKE_BUILD_TYPE ("" -> "unspecified")
    const char *sanitize;  ///< SER_SANITIZE ("" -> "none")
};

const BuildInfo &buildInfo();

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_BUILD_INFO_HH
