#include "reporting.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace ser
{
namespace harness
{

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        SER_PANIC("table row has {} cells, expected {}", cells.size(),
                  _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << "\n";
    };

    print_row(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        print_row(row);
}

namespace
{

/** Quote a CSV cell per RFC 4180 when it needs it. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\r\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << csvCell(cells[c]);
        os << "\n";
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n==== " << title << " ====\n\n";
}

} // namespace harness
} // namespace ser
