/**
 * @file
 * The persistent tier of the RunCache: a content-addressed blob
 * store under --cache-dir / SER_CACHE_DIR.
 *
 * Each cached artifact is one file,
 *
 *     <dir>/<section>/<crc64(key) as 16 hex digits>.blob
 *
 * framed as:
 *
 *     offset  size  field
 *     0       4     magic "SERB"
 *     4       4     container format version (kFormatVersion, u32)
 *     8       4     payload schema version (codec::kSchemaVersion)
 *     12      4     key length (u32)
 *     16      8     payload length (u64)
 *     24      8     CRC-64/XZ over key bytes ++ payload bytes
 *     32      -     key bytes (the full RunCache section key)
 *     ...     -     payload bytes (cache_codec encoding)
 *
 * The file name is only a bucket: load() compares the stored key
 * byte-for-byte against the requested one, so a (astronomically
 * unlikely) CRC64 filename collision reads as a clean miss, never as
 * wrong data.
 *
 * Integrity and crash-safety:
 *  - store() writes to a process/thread-unique temp name in the same
 *    directory and rename(2)s it into place, so readers only ever
 *    see complete blobs and concurrent writers of the same key
 *    last-write-win without mixing bytes. A crash mid-write leaves
 *    only a temp file, never a half-visible blob.
 *  - load() mmaps the blob and verifies magic, versions, framing
 *    lengths against the file size, and the CRC before handing the
 *    payload to the decoder. Version mismatches are clean misses
 *    (stale schema after an upgrade); any other integrity failure —
 *    truncation, bit flips, a decoder rejection — quarantines the
 *    file (rename to *.quarantine) so it cannot mis-hit again and
 *    is preserved for inspection.
 *
 * The singleton is disabled until setDirectory() is called with a
 * non-empty path (BenchOptions wires --cache-dir / SER_CACHE_DIR to
 * it). All methods are thread-safe.
 */

#ifndef SER_HARNESS_DISK_CACHE_HH
#define SER_HARNESS_DISK_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ser
{
namespace harness
{

class DiskCache
{
  public:
    static constexpr std::uint32_t kFormatVersion = 1;

    static DiskCache &instance();

    /**
     * Point the store at a directory (created if missing, along with
     * per-section subdirectories on first store). An empty path
     * disables the disk tier. schema_version is stamped into every
     * blob and checked on load; pass codec::kSchemaVersion.
     */
    void setDirectory(const std::string &dir,
                      std::uint32_t schema_version);

    bool enabled() const;
    std::string directory() const;

    enum class LoadStatus
    {
        Disabled,   ///< no directory configured
        NoEntry,    ///< no blob for this key (or filename-bucket
                    ///< collision with a different key)
        Stale,      ///< format/schema version mismatch: clean miss
        Corrupt,    ///< integrity failure; blob quarantined
        Ok,
    };

    struct LoadResult
    {
        LoadStatus status = LoadStatus::Disabled;
        std::uint64_t payloadBytes = 0;  ///< valid when status == Ok
    };

    /**
     * Look up (section, key). On an integrity-clean hit, 'decode' is
     * invoked once with the mmapped payload; if it returns false the
     * blob is treated as corrupt (quarantined, status Corrupt). The
     * payload pointer is only valid during the callback.
     */
    LoadResult load(
        const std::string &section, const std::string &key,
        const std::function<bool(const void *, std::size_t)> &decode);

    /**
     * Publish a blob for (section, key); atomic and last-write-wins.
     * Returns the total file bytes written, 0 when disabled or on an
     * I/O failure (which is non-fatal: the cache just stays cold).
     */
    std::uint64_t store(const std::string &section,
                        const std::string &key,
                        const std::string &payload);

    /** The blob path a key maps to (for tests that corrupt blobs). */
    std::string blobPath(const std::string &section,
                         const std::string &key) const;

  private:
    DiskCache() = default;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_DISK_CACHE_HH
