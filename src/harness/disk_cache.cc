#include "disk_cache.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "sim/crc64.hh"

namespace ser
{
namespace harness
{
namespace
{

constexpr char kMagic[4] = {'S', 'E', 'R', 'B'};
constexpr std::size_t kHeaderBytes = 32;

struct BlobHeader
{
    char magic[4];
    std::uint32_t formatVersion;
    std::uint32_t schemaVersion;
    std::uint32_t keyLen;
    std::uint64_t payloadLen;
    std::uint64_t crc;
};
static_assert(sizeof(BlobHeader) == kHeaderBytes,
              "blob header layout drifted");

struct State
{
    mutable std::mutex lock;
    std::string dir;
    std::uint32_t schemaVersion = 0;
    std::atomic<std::uint64_t> tempSeq{0};
};

State &
state()
{
    // Leaked like RunCache::instance(): atexit snapshots may read
    // after main returns.
    static State *s = new State;
    return *s;
}

bool
makeDir(const std::string &path)
{
    return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

std::string
hexKeyHash(const std::string &key)
{
    std::uint64_t h = crc64(0, key.data(), key.size());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
quarantine(const std::string &path)
{
    // Preserved for inspection; a second corrupt blob at the same
    // path just replaces the first quarantine.
    ::rename(path.c_str(), (path + ".quarantine").c_str());
}

} // namespace

DiskCache &
DiskCache::instance()
{
    static DiskCache *cache = new DiskCache;
    return *cache;
}

void
DiskCache::setDirectory(const std::string &dir,
                        std::uint32_t schema_version)
{
    State &s = state();
    std::lock_guard<std::mutex> guard(s.lock);
    s.dir = dir;
    s.schemaVersion = schema_version;
    if (!dir.empty())
        makeDir(dir);
}

bool
DiskCache::enabled() const
{
    State &s = state();
    std::lock_guard<std::mutex> guard(s.lock);
    return !s.dir.empty();
}

std::string
DiskCache::directory() const
{
    State &s = state();
    std::lock_guard<std::mutex> guard(s.lock);
    return s.dir;
}

std::string
DiskCache::blobPath(const std::string &section,
                    const std::string &key) const
{
    State &s = state();
    std::string dir;
    {
        std::lock_guard<std::mutex> guard(s.lock);
        dir = s.dir;
    }
    return dir + "/" + section + "/" + hexKeyHash(key) + ".blob";
}

DiskCache::LoadResult
DiskCache::load(
    const std::string &section, const std::string &key,
    const std::function<bool(const void *, std::size_t)> &decode)
{
    State &s = state();
    std::string dir;
    std::uint32_t schemaVersion;
    {
        std::lock_guard<std::mutex> guard(s.lock);
        dir = s.dir;
        schemaVersion = s.schemaVersion;
    }
    if (dir.empty())
        return {LoadStatus::Disabled, 0};

    std::string path =
        dir + "/" + section + "/" + hexKeyHash(key) + ".blob";
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return {LoadStatus::NoEntry, 0};

    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < kHeaderBytes)
    {
        ::close(fd);
        quarantine(path);
        return {LoadStatus::Corrupt, 0};
    }
    std::size_t size = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return {LoadStatus::NoEntry, 0};

    const unsigned char *bytes =
        static_cast<const unsigned char *>(map);
    BlobHeader header;
    std::memcpy(&header, bytes, kHeaderBytes);

    LoadResult result{LoadStatus::Corrupt, 0};
    if (std::memcmp(header.magic, kMagic, 4) != 0) {
        // Not one of ours at all: corrupt.
    } else if (header.formatVersion != kFormatVersion ||
               header.schemaVersion != schemaVersion)
    {
        result.status = LoadStatus::Stale;
    } else if (header.keyLen != key.size() ||
               header.keyLen > size - kHeaderBytes ||
               header.payloadLen !=
                   size - kHeaderBytes - header.keyLen)
    {
        // Framing disagrees with the file size: truncated or
        // garbled. (keyLen mismatch with intact framing would be a
        // filename collision, but that is indistinguishable from
        // corruption without the framing holding up, so the
        // byte-compare below handles the collision case.)
    } else if (std::memcmp(bytes + kHeaderBytes, key.data(),
                           key.size()) != 0)
    {
        result.status = LoadStatus::NoEntry;  // bucket collision
    } else {
        const unsigned char *payload =
            bytes + kHeaderBytes + header.keyLen;
        std::uint64_t crc = crc64(0, bytes + kHeaderBytes,
                                  header.keyLen);
        crc = crc64(crc, payload, header.payloadLen);
        if (crc == header.crc &&
            decode(payload,
                   static_cast<std::size_t>(header.payloadLen)))
        {
            result = {LoadStatus::Ok, header.payloadLen};
        }
    }

    ::munmap(map, size);
    if (result.status == LoadStatus::Corrupt)
        quarantine(path);
    return result;
}

std::uint64_t
DiskCache::store(const std::string &section, const std::string &key,
                 const std::string &payload)
{
    State &s = state();
    std::string dir;
    std::uint32_t schemaVersion;
    {
        std::lock_guard<std::mutex> guard(s.lock);
        dir = s.dir;
        schemaVersion = s.schemaVersion;
    }
    if (dir.empty())
        return 0;

    std::string sectionDir = dir + "/" + section;
    if (!makeDir(sectionDir))
        return 0;

    BlobHeader header;
    std::memcpy(header.magic, kMagic, 4);
    header.formatVersion = kFormatVersion;
    header.schemaVersion = schemaVersion;
    header.keyLen = static_cast<std::uint32_t>(key.size());
    header.payloadLen = payload.size();
    std::uint64_t crc = crc64(0, key.data(), key.size());
    header.crc = crc64(crc, payload.data(), payload.size());

    // Temp name unique across processes (pid) and threads (seq);
    // same-directory so the rename is atomic on every filesystem.
    char temp[64];
    std::snprintf(temp, sizeof(temp), ".tmp.%ld.%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      s.tempSeq.fetch_add(1)));
    std::string tempPath = sectionDir + "/" + temp;
    int fd = ::open(tempPath.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        return 0;

    auto writeAll = [fd](const void *data, std::size_t len) {
        const char *p = static_cast<const char *>(data);
        while (len) {
            ssize_t n = ::write(fd, p, len);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    };

    bool ok = writeAll(&header, kHeaderBytes) &&
              writeAll(key.data(), key.size()) &&
              writeAll(payload.data(), payload.size());
    ok = (::close(fd) == 0) && ok;
    std::string path =
        sectionDir + "/" + hexKeyHash(key) + ".blob";
    if (!ok || ::rename(tempPath.c_str(), path.c_str()) != 0) {
        ::unlink(tempPath.c_str());
        return 0;
    }
    return kHeaderBytes + key.size() + payload.size();
}

} // namespace harness
} // namespace ser
