/**
 * @file
 * Paper-style table and CSV reporting.
 *
 * Every bench binary prints its results as an aligned text table
 * (the rows the paper's tables/figures report) and optionally as
 * CSV for plotting.
 */

#ifndef SER_HARNESS_REPORTING_HH
#define SER_HARNESS_REPORTING_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ser
{
namespace harness
{

/** A simple aligned text table with a CSV mode. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add a row; cell counts must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Fixed-precision numeric formatting helpers. */
    static std::string fmt(double value, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

    /** RFC-4180 CSV: cells containing a comma, quote, or newline
     * are quoted, with embedded quotes doubled. */
    void printCsv(std::ostream &os) const;

    const std::vector<std::string> &headers() const
    {
        return _headers;
    }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return _rows;
    }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** A titled section separator for bench output. */
void printHeading(std::ostream &os, const std::string &title);

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_REPORTING_HH
