/**
 * @file
 * Graceful-shutdown metrics flush: make an interrupted sweep leave a
 * final --metrics-out snapshot behind.
 *
 * Before this, the exposition file was written only by the atexit
 * handler and every 64 sweep runs — a Ctrl-C (SIGINT) or a job
 * scheduler's SIGTERM killed the process with up to an epoch of
 * telemetry lost, because terminating signals never unwind through
 * atexit.
 *
 * Signal-handler rules make the obvious fix (call writeSnapshot()
 * from a handler) undefined: the registry takes mutexes and
 * allocates. Instead, installShutdownFlush() *blocks* SIGINT/SIGTERM
 * in the calling thread — BenchOptions::parse runs before any worker
 * or server thread spawns, so every later thread inherits the mask —
 * and parks a dedicated watcher thread in sigwait(2). The watcher
 * runs in a normal thread context, so it can safely take the
 * registry's locks, write the snapshot with the usual temp+rename
 * discipline, and then re-raise the signal with default disposition
 * so the process still dies with the correct wait status
 * (e.g. 128+15 for SIGTERM).
 */

#ifndef SER_HARNESS_SHUTDOWN_HH
#define SER_HARNESS_SHUTDOWN_HH

namespace ser
{
namespace harness
{

/** Arm the SIGINT/SIGTERM metrics flush (idempotent; called by
 * BenchOptions::parse when --metrics-out is armed). Must be called
 * from the main thread before worker threads are spawned so the
 * signal mask is inherited process-wide. */
void installShutdownFlush();

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_SHUTDOWN_HH
