#include "run_cache.hh"

#include <sstream>

#include "harness/cache_codec.hh"
#include "harness/disk_cache.hh"
#include "harness/experiment.hh"

namespace ser
{
namespace harness
{
namespace
{

// Per-type dispatch into the cache codec, so the one get<T> template
// can serve the disk tier for every section.
std::string
encodeValue(const SimProducts &v)
{
    return codec::encodeSimProducts(v);
}
std::string
encodeValue(const avf::DeadnessResult &v)
{
    return codec::encodeDeadness(v);
}
std::string
encodeValue(const avf::AvfResult &v)
{
    return codec::encodeAvf(v);
}
std::string
encodeValue(const faults::CampaignOutcome &v)
{
    return codec::encodeCampaign(v);
}

bool
decodeValue(const void *data, std::size_t len, SimProducts *out)
{
    return codec::decodeSimProducts(data, len, out);
}
bool
decodeValue(const void *data, std::size_t len,
            avf::DeadnessResult *out)
{
    return codec::decodeDeadness(data, len, out);
}
bool
decodeValue(const void *data, std::size_t len, avf::AvfResult *out)
{
    return codec::decodeAvf(data, len, out);
}
bool
decodeValue(const void *data, std::size_t len,
            faults::CampaignOutcome *out)
{
    return codec::decodeCampaign(data, len, out);
}

} // namespace

const char *
cacheOutcomeName(CacheOutcome outcome)
{
    switch (outcome) {
      case CacheOutcome::Off: return "off";
      case CacheOutcome::Miss: return "miss";
      case CacheOutcome::Hit: return "hit";
      case CacheOutcome::DiskHit: return "disk_hit";
    }
    return "off";
}

RunCache::RunCache()
{
    _sim.name = "sim";
    _deadness.name = "deadness";
    _avf.name = "avf";
    _campaign.name = "campaign";
}

RunCache &
RunCache::instance()
{
    // Leaked intentionally (like MetricsRegistry and prof's
    // registry): the --metrics-out atexit snapshot reads the cache's
    // counters after main returns, which must not race static
    // destruction. The OS reclaims the entries at process exit.
    static RunCache *cache = new RunCache;
    return *cache;
}

void
RunCache::setCapacity(std::size_t entries)
{
    _capacity.store(entries);
}

void
RunCache::clear()
{
    for (Section *section : {&_sim, &_deadness, &_avf, &_campaign}) {
        std::lock_guard<std::mutex> guard(section->lock);
        section->map.clear();
        section->fifo.clear();
        section->counters = Counters{};
    }
}

template <typename T>
std::shared_ptr<const T>
RunCache::get(Section &section, const std::string &key,
              const std::function<T()> &compute,
              CacheOutcome *outcome)
{
    std::shared_ptr<Entry> entry;
    bool mapHit;
    {
        std::lock_guard<std::mutex> guard(section.lock);
        auto it = section.map.find(key);
        mapHit = it != section.map.end();
        if (mapHit) {
            entry = it->second;
            ++section.counters.hits;
        } else {
            // Inserted now; whether this is a disk hit or a full
            // miss is decided inside the once-lambda below, which
            // also owns the miss/diskHits counter increment.
            entry = std::make_shared<Entry>();
            section.map.emplace(key, entry);
            section.fifo.push_back(key);
            std::size_t capacity = _capacity.load();
            if (capacity && section.map.size() > capacity) {
                // FIFO: the front is strictly older than the entry
                // just pushed. Holders of the evicted value keep it
                // alive through their shared_ptr.
                section.map.erase(section.fifo.front());
                section.fifo.pop_front();
                ++section.counters.evictions;
            }
        }
    }
    // Resolve outside the section lock: concurrent misses on
    // *different* keys overlap; racers on the same key block here
    // and share the first thread's result.
    std::call_once(entry->once, [&] {
        DiskCache &disk = DiskCache::instance();
        std::shared_ptr<T> value;
        CacheOutcome source = CacheOutcome::Miss;
        if (disk.enabled()) {
            auto candidate = std::make_shared<T>();
            DiskCache::LoadResult loaded = disk.load(
                section.name, key,
                [&](const void *data, std::size_t len) {
                    return decodeValue(data, len, candidate.get());
                });
            if (loaded.status == DiskCache::LoadStatus::Ok) {
                value = std::move(candidate);
                source = CacheOutcome::DiskHit;
                std::lock_guard<std::mutex> guard(section.lock);
                ++section.counters.diskHits;
                section.counters.diskBytesRead +=
                    loaded.payloadBytes;
            } else if (loaded.status ==
                       DiskCache::LoadStatus::Corrupt)
            {
                std::lock_guard<std::mutex> guard(section.lock);
                ++section.counters.diskCorrupt;
            }
        }
        if (!value) {
            value = std::make_shared<T>(compute());
            {
                std::lock_guard<std::mutex> guard(section.lock);
                ++section.counters.misses;
            }
            if (disk.enabled()) {
                std::uint64_t written = disk.store(
                    section.name, key, encodeValue(*value));
                std::lock_guard<std::mutex> guard(section.lock);
                section.counters.diskBytesWritten += written;
            }
        }
        entry->bytes.store(approxBytes(*value));
        entry->value = std::move(value);
        entry->source.store(static_cast<int>(source));
    });
    if (outcome) {
        *outcome = mapHit ? CacheOutcome::Hit
                          : static_cast<CacheOutcome>(
                                entry->source.load());
    }
    return std::static_pointer_cast<const T>(entry->value);
}

std::shared_ptr<const SimProducts>
RunCache::getSim(const std::string &key,
                 const std::function<SimProducts()> &compute,
                 CacheOutcome *outcome)
{
    return get<SimProducts>(_sim, key, compute, outcome);
}

bool
RunCache::hasSim(const std::string &key) const
{
    std::lock_guard<std::mutex> guard(_sim.lock);
    auto it = _sim.map.find(key);
    // source is stored (seq_cst) after the once-lambda publishes the
    // value, so a nonzero source means the entry is fully resolved.
    return it != _sim.map.end() &&
           it->second->source.load() !=
               static_cast<int>(CacheOutcome::Off);
}

std::shared_ptr<const avf::DeadnessResult>
RunCache::getDeadness(const std::string &key,
                      const std::function<avf::DeadnessResult()> &
                          compute,
                      CacheOutcome *outcome)
{
    return get<avf::DeadnessResult>(_deadness, key, compute, outcome);
}

std::shared_ptr<const avf::AvfResult>
RunCache::getAvf(const std::string &key,
                 const std::function<avf::AvfResult()> &compute,
                 CacheOutcome *outcome)
{
    return get<avf::AvfResult>(_avf, key, compute, outcome);
}

std::shared_ptr<const faults::CampaignOutcome>
RunCache::getCampaign(
    const std::string &key,
    const std::function<faults::CampaignOutcome()> &compute,
    CacheOutcome *outcome)
{
    return get<faults::CampaignOutcome>(_campaign, key, compute,
                                        outcome);
}

RunCache::Counters
RunCache::sectionCounters(const Section &section)
{
    std::lock_guard<std::mutex> guard(section.lock);
    Counters counters = section.counters;
    for (const auto &entry : section.map)
        counters.bytes += entry.second->bytes.load();
    return counters;
}

RunCache::Counters
RunCache::simCounters() const
{
    return sectionCounters(_sim);
}

RunCache::Counters
RunCache::deadnessCounters() const
{
    return sectionCounters(_deadness);
}

RunCache::Counters
RunCache::avfCounters() const
{
    return sectionCounters(_avf);
}

RunCache::Counters
RunCache::campaignCounters() const
{
    return sectionCounters(_campaign);
}

std::uint64_t
approxBytes(const SimProducts &products)
{
    std::uint64_t bytes = sizeof(SimProducts);
    bytes += products.trace.commits.size() *
             sizeof(cpu::CommitRecord);
    bytes += products.trace.incarnations.size() *
             sizeof(cpu::IncarnationRecord);
    bytes += products.statsDump.size() + products.statsJson.size();
    bytes += products.intervals.size() * sizeof(cpu::IntervalSample);
    if (products.program) {
        bytes += sizeof(isa::Program);
        bytes += products.program->size() * sizeof(isa::StaticInst);
        bytes += products.program->dataInits().size() *
                 sizeof(isa::DataInit);
    }
    return bytes;
}

std::uint64_t
approxBytes(const avf::DeadnessResult &result)
{
    return sizeof(avf::DeadnessResult) +
           result.kind.size() * sizeof(avf::DeadKind) +
           result.overwriteDist.size() * sizeof(std::uint32_t) +
           result.returnFdd.size() / 8;
}

std::uint64_t
approxBytes(const avf::AvfResult &result)
{
    return sizeof(avf::AvfResult) +
           result.fddRegExposures.size() * sizeof(avf::FddExposure) +
           result.epochs.size() * sizeof(avf::EpochAce);
}

std::uint64_t
approxBytes(const faults::CampaignOutcome &outcome)
{
    std::uint64_t convergence = 0;
    for (const faults::ConvergencePoint &point : outcome.convergence)
        convergence +=
            sizeof(faults::ConvergencePoint) +
            point.structures.size() *
                sizeof(faults::ConvergencePoint::StructurePoint);
    return sizeof(faults::CampaignOutcome) +
           outcome.structures.size() *
               sizeof(faults::StructureCampaign) +
           outcome.rootCauses.size() * sizeof(faults::RootCause) +
           convergence;
}

std::uint64_t
RunCache::programHash(const isa::Program &program)
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(program.size());
    for (std::size_t i = 0; i < program.size(); ++i)
        mix(program.inst(i).encode());
    mix(program.dataInits().size());
    for (const isa::DataInit &init : program.dataInits()) {
        mix(init.addr);
        mix(init.value);
    }
    mix(program.entry());
    return h;
}

std::string
RunCache::simKey(const isa::Program &program,
                 const ExperimentConfig &config,
                 const cpu::PipelineParams &p)
{
    return simKey(programHash(program), config, p);
}

std::string
RunCache::simKey(std::uint64_t program_hash,
                 const ExperimentConfig &config,
                 const cpu::PipelineParams &p)
{
    const memory::HierarchyParams &m = p.hierarchy;
    auto cache = [](std::ostringstream &os,
                    const memory::CacheParams &c) {
        os << c.sizeBytes << ',' << c.lineBytes << ',' << c.assoc
           << ',' << c.hitLatency;
    };
    std::ostringstream os;
    os << std::hex << program_hash << std::dec
       << "|warmup=" << config.warmupInsts
       << "|trigger=" << config.triggerLevel << '/'
       << config.triggerAction
       << "|interval=" << config.intervalCycles
       << "|w=" << p.fetchWidth << ',' << p.enqueueWidth << ','
       << p.issueWidth << "|iq=" << p.iqEntries
       << "|fe=" << p.frontEndDepth << "|evict=" << p.evictDelay
       << "|br=" << p.branchResolveDelay << ',' << p.redirectDelay
       << ',' << p.takenBranchBubble << "|pred=" << p.predictor
       << ',' << p.predictorEntries << ',' << p.historyBits << ','
       << p.btbEntries << ',' << p.rasEntries
       << "|lat=" << p.latIntAlu << ',' << p.latIntMul << ','
       << p.latIntDiv << ',' << p.latFpAdd << ',' << p.latFpMul
       << ',' << p.latFpDiv << ',' << p.latFpCvt
       << "|max=" << p.maxInsts << ',' << p.maxCycles
       // cycleSkip changes no simulated result, but keying on it
       // keeps the reported cycles_skipped truthful if one process
       // ever mixes both settings.
       << "|skip=" << p.cycleSkip << "|l0=";
    cache(os, m.l0);
    os << "|l1=";
    cache(os, m.l1);
    os << "|l2=";
    cache(os, m.l2);
    os << "|mem=" << m.memLatency;
    return os.str();
}

std::string
RunCache::deadnessKey(const std::string &sim_key,
                      const std::string &options)
{
    return sim_key + "|deadness=" + options;
}

std::string
RunCache::avfKey(const std::string &sim_key)
{
    return sim_key + "|avf";
}

std::string
RunCache::campaignKey(const std::string &sim_key,
                      const faults::CampaignSpec &spec)
{
    return sim_key + "|campaign|" + spec.cacheKey();
}

} // namespace harness
} // namespace ser
