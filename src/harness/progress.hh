/**
 * @file
 * The live sweep progress reporter (--progress): one updating
 * stderr line while a SuiteRunner sweep executes —
 *
 *     [table1_squashing] 42/78 runs 54% | 12.3 runs/s | cache 85% hit | eta 3s
 *
 * Design constraints:
 *
 *  - stderr only, never stdout: the determinism fixtures
 *    byte-compare captured stdout, and a human watching a sweep
 *    usually redirects stdout to a file anyway;
 *  - every redraw holds the process-wide stderr line lock
 *    (sim/logging.hh), the same lock warn()/SER_DPRINTF hold per
 *    line, so a progress redraw never interleaves characters with a
 *    concurrent worker's diagnostics — and a warn line simply
 *    overwrites the progress line, which the next redraw repaints;
 *  - redraws are throttled (default 10 Hz) and claimed with a
 *    compare-exchange, so many workers finishing at once cost one
 *    redraw, not one each.
 *
 * The reporter is a process-wide singleton armed by BenchOptions
 * (--progress); SuiteRunner drives it, so every suite bench gets
 * the line without per-main wiring. Mains that fan out with bare
 * parallelFor (fig1, table2) drive it directly.
 */

#ifndef SER_HARNESS_PROGRESS_HH
#define SER_HARNESS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace ser
{
namespace harness
{

/** Live progress over a fixed number of runs; see file comment.
 *
 * Sweep state (done/total/label/clock) is recorded unconditionally —
 * the atomics cost nothing next to a run — so the telemetry server's
 * /status endpoint can report a sweep even when the stderr line is
 * not armed; only *drawing* is gated on --progress. */
class Progress
{
  public:
    static Progress &instance();

    /** Arm (--progress). Disabled reporters record state but never
     * paint. */
    void setEnabled(bool on) { _enabled.store(on); }
    bool enabled() const { return _enabled.load(); }

    /** Start a sweep of `total` runs. `label` prefixes the line
     * (conventionally the bench name). Resets the clock and the
     * campaign CI state. */
    void beginSweep(std::size_t total, std::string label = "");

    /** One run finished; redraws the line (throttled). */
    void runCompleted();

    /** Sweep done: paint the final state and release the line. */
    void endSweep();

    /** One campaign batch folded: remember the worst tracked CI
     * half-width (and the --ci-target it races toward) so the line
     * shows distance-to-stop, and redraw (throttled). Campaigns on
     * concurrent workers race benignly here — the line shows the
     * most recent batch, which is all a live ticker promises. */
    void campaignTick(double ci_half_width, double ci_target);

    /** A read-only copy of the sweep state for /status. */
    struct Snapshot
    {
        bool active = false;  ///< a sweep has begun this process
        std::string label;
        std::uint64_t done = 0;
        std::uint64_t total = 0;
        double elapsedSeconds = 0.0;
        double runsPerSec = 0.0;
        double etaSeconds = -1.0;  ///< < 0 = unknown
        bool campaignActive = false;
        double campaignHalfWidth = 1.0;
        double campaignTarget = 0.0;
    };
    Snapshot snapshot() const;

  private:
    Progress() = default;

    void draw(bool final);
    void maybeDraw();

    std::atomic<bool> _enabled{false};
    std::atomic<std::uint64_t> _total{0};
    std::atomic<std::uint64_t> _done{0};
    std::atomic<std::int64_t> _lastDrawNs{0};
    /** Campaign CI state in parts per billion; ~0 = no campaign has
     * ticked this sweep. Integer atomics keep the hot path lock-free. */
    static constexpr std::uint64_t kNoCi = ~0ull;
    std::atomic<std::uint64_t> _ciHalfWidthPpb{kNoCi};
    std::atomic<std::uint64_t> _ciTargetPpb{0};
    std::atomic<bool> _everBegan{false};
    /** Guards _start/_label against the telemetry thread's
     * snapshot() racing a beginSweep(). */
    mutable std::mutex _metaLock;
    std::chrono::steady_clock::time_point _start;
    std::string _label;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_PROGRESS_HH
