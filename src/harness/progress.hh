/**
 * @file
 * The live sweep progress reporter (--progress): one updating
 * stderr line while a SuiteRunner sweep executes —
 *
 *     [table1_squashing] 42/78 runs 54% | 12.3 runs/s | cache 85% hit | eta 3s
 *
 * Design constraints:
 *
 *  - stderr only, never stdout: the determinism fixtures
 *    byte-compare captured stdout, and a human watching a sweep
 *    usually redirects stdout to a file anyway;
 *  - every redraw holds the process-wide stderr line lock
 *    (sim/logging.hh), the same lock warn()/SER_DPRINTF hold per
 *    line, so a progress redraw never interleaves characters with a
 *    concurrent worker's diagnostics — and a warn line simply
 *    overwrites the progress line, which the next redraw repaints;
 *  - redraws are throttled (default 10 Hz) and claimed with a
 *    compare-exchange, so many workers finishing at once cost one
 *    redraw, not one each.
 *
 * The reporter is a process-wide singleton armed by BenchOptions
 * (--progress); SuiteRunner drives it, so every suite bench gets
 * the line without per-main wiring. Mains that fan out with bare
 * parallelFor (fig1, table2) drive it directly.
 */

#ifndef SER_HARNESS_PROGRESS_HH
#define SER_HARNESS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ser
{
namespace harness
{

/** Live progress over a fixed number of runs; see file comment. */
class Progress
{
  public:
    static Progress &instance();

    /** Arm (--progress). Disabled reporters make every call below
     * a near-free no-op. */
    void setEnabled(bool on) { _enabled.store(on); }
    bool enabled() const { return _enabled.load(); }

    /** Start a sweep of `total` runs. `label` prefixes the line
     * (conventionally the bench name). Resets the clock. */
    void beginSweep(std::size_t total, std::string label = "");

    /** One run finished; redraws the line (throttled). */
    void runCompleted();

    /** Sweep done: paint the final state and release the line. */
    void endSweep();

  private:
    Progress() = default;

    void draw(bool final);

    std::atomic<bool> _enabled{false};
    std::atomic<std::uint64_t> _total{0};
    std::atomic<std::uint64_t> _done{0};
    std::atomic<std::int64_t> _lastDrawNs{0};
    std::chrono::steady_clock::time_point _start;
    std::string _label;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_PROGRESS_HH
