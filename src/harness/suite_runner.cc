#include "suite_runner.hh"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "harness/manifest.hh"
#include "harness/metrics.hh"
#include "harness/progress.hh"
#include "harness/telemetry_server.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "workloads/suite.hh"

namespace ser
{
namespace harness
{

unsigned
defaultJobs()
{
    static const unsigned jobs = [] {
        const char *env = std::getenv("SER_JOBS");
        if (!env)
            return 1u;
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (*env == '\0' || !end || *end != '\0' || v == 0)
            SER_FATAL("SER_JOBS: bad value '{}' (want a positive "
                      "integer)", env);
        return static_cast<unsigned>(v);
    }();
    return jobs;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    // The worker pool itself lives in sim/parallel (shared with the
    // campaign engine); this wrapper only adds the SER_JOBS default.
    ser::parallelFor(n, jobs == 0 ? defaultJobs() : jobs, fn);
}

SuiteRunner::SuiteRunner(unsigned jobs)
    : _jobs(jobs == 0 ? defaultJobs() : jobs)
{
}

std::size_t
SuiteRunner::addProgram(const workloads::BenchmarkProfile &profile,
                        std::uint64_t dynamic_target)
{
    auto shared = std::make_unique<SharedProgram>();
    shared->profile = profile;
    shared->dynamicTarget = dynamic_target;
    _programs.push_back(std::move(shared));
    return _programs.size() - 1;
}

std::size_t
SuiteRunner::addProgram(const std::string &name,
                        std::uint64_t dynamic_target)
{
    return addProgram(workloads::findProfile(name), dynamic_target);
}

std::size_t
SuiteRunner::submit(std::size_t program_id, ExperimentConfig config)
{
    if (program_id >= _programs.size())
        SER_PANIC("SuiteRunner: bad program id {}", program_id);
    Job job;
    job.programId = program_id;
    job.config = std::move(config);
    _queue.push_back(std::move(job));
    std::size_t index = _queue.size() - 1;
    SharedProgram &shared = *_programs[program_id];
    if (shared.firstRun == kNone)
        shared.firstRun = index;
    return index;
}

std::size_t
SuiteRunner::submit(std::function<RunArtifacts()> job)
{
    Job generic;
    generic.fn = std::move(job);
    _queue.push_back(std::move(generic));
    return _queue.size() - 1;
}

std::vector<RunArtifacts>
SuiteRunner::run()
{
    if (_ran)
        SER_PANIC("SuiteRunner: run() called twice");
    _ran = true;

    std::vector<RunArtifacts> results(_queue.size());
    Progress &progress = Progress::instance();
    progress.beginSweep(_queue.size(), _label);
    std::atomic<std::uint64_t> completed{0};
    parallelFor(_queue.size(), _jobs, [&](std::size_t i) {
        Job &job = _queue[i];
        if (job.fn) {
            results[i] = job.fn();
        } else {
            SharedProgram &shared = *_programs[job.programId];
            std::call_once(shared.built, [&] {
                ScopedTimer timer(shared.buildTimings, "build");
                shared.program =
                    std::make_shared<const isa::Program>(
                        workloads::buildBenchmark(
                            shared.profile, shared.dynamicTarget));
            });
            results[i] = runProgram(shared.program, job.config,
                                    shared.profile.name);
            results[i].seed = shared.profile.seed;
        }
        progress.runCompleted();
        // Publish the completed run to the telemetry server (/runs).
        // Read-only with respect to the sweep: the manifest bytes
        // are the same ones JsonReport would serialize, so --serve
        // cannot perturb any output the fixtures compare.
        TelemetryServer &server = TelemetryServer::instance();
        if (server.running()) {
            std::string manifest;
            if (!job.fn && results[i].trace && results[i].avf) {
                std::ostringstream os;
                json::JsonWriter jw(os);
                writeRunManifest(jw, results[i], job.config);
                manifest = os.str();
            }
            server.publishRun(i, results[i].benchmark,
                              results[i].ipc, std::move(manifest));
        }
        // The sweep epoch: a live exposition snapshot every
        // epochRuns completions, so a watcher sees the sweep move.
        std::uint64_t done = completed.fetch_add(1) + 1;
        if (done % MetricsRegistry::epochRuns == 0)
            MetricsRegistry::instance().writeSnapshot();
    });
    progress.endSweep();
    MetricsRegistry::instance().add(
        "ser_sweeps_total", 1,
        "Suite sweeps (SuiteRunner::run calls) completed.");

    // The build happened on whichever worker got there first; the
    // manifest records it exactly once, on the deterministic
    // first-submitted run of each program.
    for (auto &shared : _programs)
        if (shared->firstRun != kNone)
            prependTimings(std::move(shared->buildTimings),
                           results[shared->firstRun]);
    return results;
}

} // namespace harness
} // namespace ser
