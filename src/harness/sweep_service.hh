/**
 * @file
 * The sweep daemon's request API, mounted on the TelemetryServer
 * poll loop (telemetry_server.hh setRequestHandler): a long-lived
 * process that answers repeat sweep queries from the RunCache —
 * including its persistent disk tier — without re-simulating.
 *
 * Endpoints (JSON request and response bodies):
 *
 *   POST /sweep       submit one sweep point:
 *                       { "benchmark": "mcf",        (required)
 *                         "insts": 200000,           (dynamicTarget)
 *                         "warmup": 10000,
 *                         "pet_size": 512,
 *                         "trigger_level": "none|l0|l1|l2",
 *                         "trigger_action": "squash|throttle|both" }
 *                     Warm (the sim key is already resolved in the
 *                     in-process map or present in the --cache-dir
 *                     blob store): answered inline, HTTP 200, with
 *                     the full run manifest under "result".
 *                     Cold: HTTP 202 with a ticket; the run is
 *                     scheduled on the worker pool (sim/parallel.hh
 *                     WorkerPool) and the client polls the ticket.
 *   GET /sweep/<id>   one ticket:
 *                       { "id": N, "state": "pending|running|done",
 *                         "benchmark": ..., "warm": bool,
 *                         "result": {manifest}|null }
 *   GET /sweep        index of every ticket issued plus the
 *                     warm/cold answer counters.
 *
 * Determinism: a warm answer and a cold answer for the same spec
 * carry byte-identical manifests (modulo the timings_seconds and
 * run_cache observability blocks, exactly the fields the
 * determinism fixtures mask), because the manifest is a pure
 * function of the artifacts and the RunCache guarantees
 * byte-identical artifacts cold or warm (tests/check_daemon.cc).
 *
 * Built surrogate programs are memoized by (benchmark, insts), so
 * repeat queries skip even the workload build; the warm probe costs
 * one map lookup plus at most one stat(2).
 *
 * Thread-safety: handle() runs on the server poll thread; cold runs
 * execute on pool workers. All shared state is guarded by one
 * mutex; tickets are append-only so GET /sweep/<id> never races a
 * completing run.
 */

#ifndef SER_HARNESS_SWEEP_SERVICE_HH
#define SER_HARNESS_SWEEP_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "harness/experiment.hh"
#include "harness/telemetry_server.hh"
#include "isa/program.hh"
#include "sim/parallel.hh"

namespace ser
{
namespace harness
{

/** See file comment. */
class SweepService
{
  public:
    /** 'workers' cold-run threads (>= 1). */
    explicit SweepService(unsigned workers);

    /** Joins the pool: every accepted cold run finishes first. */
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Install this service as the server's request handler. The
     * service must outlive the server's poll thread (in the daemon
     * both live until process exit). */
    void mountOn(TelemetryServer &server);

    /**
     * The request entry point (also what the unit tests drive
     * directly, socket-free). Claims POST /sweep and GET /sweep[/N];
     * returns status 0 for any other request so the server falls
     * back to its built-in routes / 404.
     */
    TelemetryServer::Response handle(std::string_view method,
                                     std::string_view path,
                                     const std::string &body);

    /** Warm/cold accounting (also served by GET /sweep). */
    std::uint64_t warmAnswers() const;
    std::uint64_t coldAnswers() const;

  private:
    struct Ticket
    {
        std::uint64_t id = 0;
        std::string benchmark;
        bool warm = false;
        /** "pending" -> "running" -> "done" (or "failed"). */
        std::string state = "pending";
        /** Serialized run-manifest JSON object (empty until done). */
        std::string result;
    };

    /** A parsed, validated POST /sweep spec. */
    struct SweepSpec
    {
        std::string benchmark;
        ExperimentConfig config;
    };

    TelemetryServer::Response postSweep(const std::string &body);
    TelemetryServer::Response getTicket(std::uint64_t id);
    TelemetryServer::Response indexJson();

    /** Serialize one ticket (caller holds _lock or owns the only
     * reference). */
    static std::string ticketJson(const Ticket &ticket);

    /** Parse and validate a request body; on failure returns false
     * and fills 'err'. */
    static bool parseSpec(const std::string &body, SweepSpec *spec,
                          std::string *err);

    /** A memoized surrogate build plus its content hash — hashed
     * once at build time, because programHash() walks every data
     * initialiser (millions of entries for the large-working-set
     * surrogates) and the daemon needs it on every request. */
    struct BuiltProgram
    {
        std::shared_ptr<const isa::Program> program;
        std::uint64_t hash = 0;  ///< RunCache::programHash
    };

    /** Memoized surrogate build. */
    BuiltProgram program(const std::string &benchmark,
                         std::uint64_t insts);

    /** The full-spec response key: the sim key plus every
     * post-commit knob the manifest depends on. Two specs with equal
     * keys produce byte-identical manifests, so the daemon replays
     * the first answer. */
    static std::string specKey(const SweepSpec &spec,
                               std::uint64_t program_hash);

    /** True when the spec's sim key would hit the in-process map or
     * the disk tier — i.e. POST can answer inline without
     * simulating. */
    static bool isWarm(const SweepSpec &spec,
                       std::uint64_t program_hash);

    /** Run the spec (on whichever thread) and serialize its
     * manifest; fills *ipc for the /runs publish hook. */
    static std::string
    runManifest(const SweepSpec &spec,
                std::shared_ptr<const isa::Program> program,
                double *ipc);

    static TelemetryServer::Response errorResponse(int status,
                                                   const std::string
                                                       &message);

    mutable std::mutex _lock;
    /** Set by mountOn(); completed runs are republished to its
     * /runs ring (ticket id as the run index). */
    TelemetryServer *_server = nullptr;
    std::map<std::uint64_t, std::shared_ptr<Ticket>> _tickets;
    std::uint64_t _nextId = 1;
    std::uint64_t _warmAnswers = 0;
    std::uint64_t _coldAnswers = 0;
    std::map<std::pair<std::string, std::uint64_t>, BuiltProgram>
        _programs;

    /** Completed answers by specKey(): a repeat POST of an
     * already-answered spec replays the stored manifest in
     * microseconds — one map lookup, no simulation, no analysis
     * replay, no re-serialization. */
    struct Answer
    {
        std::string manifest;
        double ipc = 0.0;
    };
    std::map<std::string, Answer> _answers;

    /** Declared last: the destructor drains jobs that touch the
     * members above. */
    WorkerPool _pool;
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_SWEEP_SERVICE_HH
