#include "metrics.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "harness/build_info.hh"
#include "harness/run_cache.hh"
#include "sim/logging.hh"
#include "sim/prof.hh"

namespace ser
{
namespace harness
{

namespace
{

/** Prometheus metric/label-name alphabet: [a-zA-Z0-9_:]; anything
 * else (the prof layer's dots) becomes '_'. */
std::string
sanitize(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Label values get the exposition-format escapes. */
std::string
escapeLabelValue(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

std::string
renderLabels(std::string_view key, std::string_view value)
{
    if (key.empty())
        return "";
    return "{" + sanitize(key) + "=\"" +
           escapeLabelValue(value) + "\"}";
}

/** Render a multi-label block; the caller passes the pairs in the
 * (sorted) order they should appear. */
std::string
renderLabelSet(
    const std::vector<std::pair<const char *, const char *>> &labels)
{
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ",";
        out += sanitize(labels[i].first) + "=\"" +
               escapeLabelValue(labels[i].second) + "\"";
    }
    out += "}";
    return out;
}

/** Shortest-round-trip formatting for gauge/seconds values, so the
 * exposition bytes are a pure function of the double. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int precision = 1; precision <= 16; ++precision) {
        char probe[64];
        std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
        std::sscanf(probe, "%lf", &parsed);
        if (parsed == v)
            return probe;
    }
    return buf;
}

} // namespace

std::string
promCounterName(const std::string &prof_name)
{
    const std::string speed_prefix = "speed.";
    if (prof_name.rfind(speed_prefix, 0) == 0)
        return "ser_speed_" +
               sanitize(prof_name.substr(speed_prefix.size())) +
               "_total";
    return "ser_prof_" + sanitize(prof_name) + "_total";
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

void
MetricsRegistry::setOutputPath(std::string path)
{
    std::lock_guard<std::mutex> guard(_lock);
    _outputPath = std::move(path);
}

std::string
MetricsRegistry::outputPath() const
{
    std::lock_guard<std::mutex> guard(_lock);
    return _outputPath;
}

MetricsRegistry::Series &
MetricsRegistry::upsertRendered(std::string_view name, Kind kind,
                                std::string_view help,
                                std::string rendered_labels)
{
    // _lock is held by the caller.
    Family &family = _families[sanitize(name)];
    if (family.series.empty()) {
        family.kind = kind;
        family.help = help;
    }
    return family.series[std::move(rendered_labels)];
}

MetricsRegistry::Series &
MetricsRegistry::upsert(std::string_view name, Kind kind,
                        std::string_view help,
                        std::string_view label_key,
                        std::string_view label_value)
{
    return upsertRendered(name, kind, help,
                          renderLabels(label_key, label_value));
}

void
MetricsRegistry::add(std::string_view name, std::uint64_t v,
                     std::string_view help,
                     std::string_view label_key,
                     std::string_view label_value)
{
    std::lock_guard<std::mutex> guard(_lock);
    upsert(name, Kind::Counter, help, label_key, label_value)
        .uvalue += v;
}

void
MetricsRegistry::addSeconds(std::string_view name, double v,
                            std::string_view help,
                            std::string_view label_key,
                            std::string_view label_value)
{
    std::lock_guard<std::mutex> guard(_lock);
    upsert(name, Kind::Seconds, help, label_key, label_value)
        .dvalue += v;
}

void
MetricsRegistry::setGauge(std::string_view name, double v,
                          std::string_view help,
                          std::string_view label_key,
                          std::string_view label_value)
{
    std::lock_guard<std::mutex> guard(_lock);
    upsert(name, Kind::Gauge, help, label_key, label_value)
        .dvalue = v;
}

void
MetricsRegistry::maxGauge(std::string_view name, std::uint64_t v,
                          std::string_view help,
                          std::string_view label_key,
                          std::string_view label_value)
{
    std::lock_guard<std::mutex> guard(_lock);
    Series &series =
        upsert(name, Kind::Gauge, help, label_key, label_value);
    if (static_cast<double>(v) > series.dvalue)
        series.dvalue = static_cast<double>(v);
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> guard(_lock);
    for (const auto &entry : _families) {
        const Family &family = entry.second;
        if (!family.help.empty())
            os << "# HELP " << entry.first << " " << family.help
               << "\n";
        os << "# TYPE " << entry.first << " "
           << (family.kind == Kind::Gauge ? "gauge" : "counter")
           << "\n";
        for (const auto &series : family.series) {
            os << entry.first << series.first << " ";
            if (family.kind == Kind::Counter)
                os << series.second.uvalue;
            else
                os << formatDouble(series.second.dvalue);
            os << "\n";
        }
    }
}

std::string
MetricsRegistry::renderExposition()
{
    collectProcessMetrics();
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

void
MetricsRegistry::collectProcessMetrics()
{
    // Run-cache sections: their counters are already process totals,
    // so import them as absolute values (idempotent across repeated
    // snapshots).
    RunCache &cache = RunCache::instance();
    struct SectionStats
    {
        const char *name;
        RunCache::Counters counters;
    } sections[] = {
        {"sim", cache.simCounters()},
        {"deadness", cache.deadnessCounters()},
        {"avf", cache.avfCounters()},
        {"campaign", cache.campaignCounters()},
    };
    std::lock_guard<std::mutex> guard(_lock);

    // Build provenance in labels, value pinned to 1 — the
    // node-exporter `*_build_info` idiom. Compile-time constants, so
    // identical across every determinism-fixture variant.
    const BuildInfo &build = buildInfo();
    upsertRendered("ser_build_info", Kind::Gauge,
                   "Build metadata (value is always 1).",
                   renderLabelSet({{"build_type", build.buildType},
                                   {"compiler", build.compiler},
                                   {"git", build.git},
                                   {"sanitize", build.sanitize}}))
        .dvalue = 1.0;

    for (const SectionStats &s : sections) {
        upsert("ser_run_cache_hits_total", Kind::Counter,
               "Run-cache lookups answered from the in-process "
               "map.", "section", s.name).uvalue = s.counters.hits;
        upsert("ser_run_cache_disk_hits_total", Kind::Counter,
               "Run-cache lookups answered from the persistent "
               "disk tier.", "section",
               s.name).uvalue = s.counters.diskHits;
        upsert("ser_run_cache_misses_total", Kind::Counter,
               "Run-cache lookups that computed.", "section",
               s.name).uvalue = s.counters.misses;
        upsert("ser_run_cache_evictions_total", Kind::Counter,
               "Entries evicted by the FIFO capacity bound.",
               "section", s.name).uvalue = s.counters.evictions;
        upsert("ser_run_cache_bytes", Kind::Gauge,
               "Approximate bytes retained per cache section.",
               "section", s.name).dvalue =
            static_cast<double>(s.counters.bytes);
        upsert("ser_run_cache_disk_read_bytes_total", Kind::Counter,
               "Blob payload bytes deserialized on disk hits.",
               "section", s.name).uvalue = s.counters.diskBytesRead;
        upsert("ser_run_cache_disk_written_bytes_total",
               Kind::Counter,
               "Blob bytes published to the disk tier.", "section",
               s.name).uvalue = s.counters.diskBytesWritten;
        upsert("ser_run_cache_disk_corrupt_total", Kind::Counter,
               "Blobs rejected by integrity checks and "
               "quarantined.", "section",
               s.name).uvalue = s.counters.diskCorrupt;
    }

    // The prof layer: counters (already name-sorted) and the
    // hierarchical scope profile.
    prof::Snapshot snap = prof::snapshot();
    for (const prof::CounterSample &c : snap.counters)
        upsert(promCounterName(c.name), Kind::Counter, c.desc, "",
               "").uvalue = c.value;
    for (const prof::ScopeSample &s : snap.scopes) {
        upsert("ser_prof_scope_calls_total", Kind::Counter,
               "Times each profiled scope was entered.", "scope",
               s.path).uvalue = s.calls;
        upsert("ser_prof_scope_seconds_total", Kind::Seconds,
               "Wall-clock seconds spent in each profiled scope.",
               "scope", s.path).dvalue = s.seconds;
    }
}

bool
MetricsRegistry::writeSnapshot()
{
    std::string path = outputPath();
    if (path.empty())
        return false;
    collectProcessMetrics();

    // Write-to-temp + rename: a concurrent reader (tail -f, a
    // scraper) always sees a complete exposition document.
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            SER_FATAL("metrics: cannot open '{}' for writing", tmp);
        writePrometheus(os);
        if (!os)
            SER_FATAL("metrics: write to '{}' failed", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        SER_FATAL("metrics: cannot rename '{}' to '{}'", tmp, path);
    return true;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> guard(_lock);
    _families.clear();
}

} // namespace harness
} // namespace ser
