/**
 * @file
 * The process-wide metrics registry: one aggregation point for
 * everything the simulator can report about itself, serialized as
 * Prometheus text exposition format.
 *
 * The registry unifies three sources:
 *
 *  - harness-level run accounting pushed by runProgram() and
 *    SuiteRunner (runs completed/failed, per-phase wall time,
 *    skipped cycles, DynInst pool high-water, trace events);
 *  - the RunCache's section counters (hits / misses / evictions /
 *    cached bytes), pulled at snapshot time;
 *  - the sim::prof layer's counters and hierarchical scope timers
 *    (sim/prof.hh), pulled at snapshot time.
 *
 * `--metrics-out FILE` (BenchOptions) arms the registry: a snapshot
 * is written on every sweep epoch (every MetricsRegistry::epochRuns
 * completed runs of a SuiteRunner sweep, so a watcher — or the
 * future server mode's /metrics endpoint — sees live progress) and
 * once at process exit, atomically (write-to-temp + rename), so a
 * concurrent reader never sees a torn file.
 *
 * Determinism contract (extends DESIGN.md §7's): every metric value
 * is byte-identical across --jobs 1 / --jobs 4 — counters merge by
 * integer summation in submission order — EXCEPT two masked
 * classes, which tests/check_metrics.cc value-masks (names must
 * still match):
 *
 *  - wall-clock metrics, suffix `_seconds` / `_seconds_total`;
 *  - simulator-speed observations, prefix `ser_speed_` (tick-loop
 *    iterations, skipped cycles): also not identical across
 *    --no-cycle-skip, exactly like cycles_skipped in the manifest
 *    timings block.
 */

#ifndef SER_HARNESS_METRICS_HH
#define SER_HARNESS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace ser
{
namespace harness
{

/** Aggregates named metrics and writes Prometheus text exposition.
 * All methods are thread-safe. instance() is the process-wide
 * registry; tests may construct private registries. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    static MetricsRegistry &instance();

    /** Runs between mid-sweep snapshots (the "sweep epoch"). */
    static constexpr std::uint64_t epochRuns = 64;

    /** Arm snapshot writing (--metrics-out). Empty disarms. */
    void setOutputPath(std::string path);
    std::string outputPath() const;

    /** Add to a monotonic counter (created at first touch; the help
     * string of the first touch wins). Metric names should follow
     * Prometheus conventions: `ser_..._total` for counters. */
    void add(std::string_view name, std::uint64_t v,
             std::string_view help = "",
             std::string_view label_key = "",
             std::string_view label_value = "");

    /** Add to a wall-clock seconds counter (`..._seconds_total`). */
    void addSeconds(std::string_view name, double v,
                    std::string_view help = "",
                    std::string_view label_key = "",
                    std::string_view label_value = "");

    /** Set a gauge to an absolute value. */
    void setGauge(std::string_view name, double v,
                  std::string_view help = "",
                  std::string_view label_key = "",
                  std::string_view label_value = "");

    /** Raise a gauge to at least v (pool high-water style). */
    void maxGauge(std::string_view name, std::uint64_t v,
                  std::string_view help = "",
                  std::string_view label_key = "",
                  std::string_view label_value = "");

    /**
     * Serialize every metric currently in the registry: families
     * sorted by name, one HELP/TYPE header each, series sorted by
     * label — a total order, so the bytes never depend on insertion
     * (i.e. scheduling) order.
     */
    void writePrometheus(std::ostream &os) const;

    /** collectProcessMetrics() + writePrometheus() into a string: a
     * complete, self-consistent exposition document rendered under
     * the registry lock — what the telemetry server's /metrics
     * endpoint serves on every pull, instead of a stale file
     * snapshot. */
    std::string renderExposition();

    /** Import the RunCache counters, the sim::prof snapshot, and the
     * ser_build_info gauge into the registry (absolute sets — their
     * sources already hold process totals). */
    void collectProcessMetrics();

    /** collectProcessMetrics() + atomic write to the armed path.
     * Returns false (and does nothing) when no path is armed. */
    bool writeSnapshot();

    /** Drop every metric (tests). The armed path survives. */
    void clear();

  private:
    enum class Kind { Counter, Gauge, Seconds };

    struct Series
    {
        double dvalue = 0.0;
        std::uint64_t uvalue = 0;
    };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        /** Keyed by the rendered label block ("" or
         * `{key="value"}`); map iteration gives the sorted order
         * the writer needs. */
        std::map<std::string, Series> series;
    };

    Series &upsert(std::string_view name, Kind kind,
                   std::string_view help, std::string_view label_key,
                   std::string_view label_value);
    /** Like upsert, but with an already-rendered (sorted,
     * multi-label) label block — the series map key. */
    Series &upsertRendered(std::string_view name, Kind kind,
                           std::string_view help,
                           std::string rendered_labels);

    mutable std::mutex _lock;
    std::map<std::string, Family> _families;
    std::string _outputPath;
};

/** `ser_speed_<x>_total` / `ser_prof_<x>_total` for a dotted prof
 * counter name; exposed for the unit tests. */
std::string promCounterName(const std::string &prof_name);

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_METRICS_HH
