/**
 * @file
 * The command-line options shared by every bench and example binary.
 *
 * Each binary used to hand-roll the same Config/csv parsing; this
 * factors it into one parser so the observability flags (--json,
 * --intervals, --debug) arrive everywhere at once:
 *
 *   --csv            print tables as CSV instead of aligned text
 *   --json PATH      write a JSON run manifest (and, when intervals
 *                    are on, a sibling .intervals.jsonl time series)
 *   --intervals N    sample the pipeline every N cycles (the series
 *                    is only written with --json)
 *   --trace-events F write instruction-lifetime Chrome trace-event
 *                    JSON (load in ui.perfetto.dev) covering every
 *                    run of the sweep
 *   --topn N         compute per-PC AVF attribution and print the
 *                    top-N hotspot table per run
 *   --jobs N         run suite sweeps on N worker threads (same as
 *                    SER_JOBS; default 1 = serial). Output is
 *                    byte-identical for any N.
 *   --no-run-cache   disable the memoized run cache (sweep points
 *                    re-simulate instead of sharing artifacts;
 *                    output is byte-identical either way)
 *   --cache-dir DIR  persistent disk tier for the run cache (same
 *                    as SER_CACHE_DIR): content-addressed artifact
 *                    blobs under DIR survive the process, so a
 *                    repeated sweep skips simulation entirely;
 *                    output is byte-identical cold or warm
 *   --no-cycle-skip  disable event-driven idle-cycle fast-forward
 *                    in the timing pipeline (tick every cycle;
 *                    output is byte-identical either way)
 *   --metrics-out F  enable telemetry (sim::prof counters and scope
 *                    timers) and write a Prometheus text-exposition
 *                    snapshot to F at every sweep epoch, at exit,
 *                    and on SIGINT/SIGTERM (graceful-shutdown flush)
 *   --progress       live one-line sweep progress on stderr
 *                    (completed/total, runs/s, cache hit rate,
 *                    campaign CI convergence, ETA)
 *   --serve PORT     embedded live-telemetry HTTP server on
 *                    127.0.0.1:PORT (/metrics /status /runs
 *                    /campaign /healthz); read-only, so output stays
 *                    byte-identical with the server on or off
 *   --ci-target X    adaptive early stop for fault-injection
 *                    campaigns: stop sampling once every 95% CI
 *                    half-width is below X (campaign benches only)
 *   --convergence-out F
 *                    stream the per-batch campaign convergence
 *                    time-series as JSONL to F (campaign benches
 *                    only)
 *   --debug FLAGS    select debug trace flags (same as
 *                    SER_DEBUG_FLAGS), e.g. --debug Trigger,IQ
 *   --help           print usage and exit
 *   key=value        simulator parameter overrides (as before)
 *
 * Legacy spellings keep working: csv=1 still selects CSV,
 * debug_flags=... selects trace flags like --debug, and key=value
 * tokens are collected into the Config exactly as Config::parseArgs
 * did.
 */

#ifndef SER_HARNESS_BENCH_OPTIONS_HH
#define SER_HARNESS_BENCH_OPTIONS_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace ser
{
namespace harness
{

/** Parsed shared options plus the remaining key=value Config. */
struct BenchOptions
{
    Config config;

    bool csv = false;            ///< --csv (or legacy csv=1)
    std::string jsonPath;        ///< --json PATH; empty = off
    std::uint64_t intervalCycles = 0;  ///< --intervals N; 0 = off
    std::string traceEventsPath; ///< --trace-events F; empty = off
    std::uint32_t topn = 0;      ///< --topn N; 0 = off

    /** Suite-sweep worker threads: --jobs N, else SER_JOBS, else 1
     * (serial). Always >= 1 after parse(). */
    unsigned jobs = 1;

    /** False after --no-run-cache (parse() also flips the
     * process-wide harness::RunCache switch). */
    bool runCache = true;

    /** --cache-dir DIR, else SER_CACHE_DIR, else empty = no disk
     * tier. parse() points the process-wide harness::DiskCache at
     * it, so warm artifacts persist across processes. */
    std::string cacheDir;

    /** False after --no-cycle-skip (parse() also flips the
     * process-wide cpu::PipelineParams default, which is how the
     * flag reaches benches that build their configs from default
     * params). */
    bool cycleSkip = true;

    /** --metrics-out F; empty = off. parse() arms the process-wide
     * MetricsRegistry, enables sim::prof, and registers an atexit
     * final snapshot, so every binary that parses its argv through
     * here gets telemetry with no further wiring. */
    std::string metricsOutPath;

    /** True after --progress (parse() also arms the process-wide
     * harness::Progress reporter). */
    bool progress = false;

    /** --serve PORT: parse() starts the process-wide
     * harness::TelemetryServer on 127.0.0.1:PORT before returning,
     * so the endpoints answer for the binary's whole lifetime.
     * -1 = off; 0 picks an ephemeral port (announced on stderr). */
    int servePort = -1;

    /** --convergence-out F; empty = off. Benches that run campaigns
     * stream the per-batch convergence time-series (recorded in
     * CampaignOutcome::convergence) to F as JSONL via
     * harness::writeConvergenceJsonl. */
    std::string convergenceOutPath;

    /** --ci-target X: fault-injection campaigns stop early once
     * every tracked 95% CI half-width falls below X (0 = run the
     * full sample budget). Only benches that run campaigns read
     * it (they copy it into CampaignSpec::ciTarget). */
    double ciTarget = 0.0;

    /**
     * Parse argv. Prints usage and exits on --help; fatal on an
     * unknown --option or a malformed value. 'usage' is the one-line
     * binary description shown by --help.
     */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &usage = "");
};

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_BENCH_OPTIONS_HH
