#include "cache_codec.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cpu/sampler.hh"
#include "cpu/trace.hh"
#include "isa/program.hh"
#include "isa/static_inst.hh"

namespace ser
{
namespace harness
{
namespace codec
{
namespace
{

static_assert(std::endian::native == std::endian::little,
              "cache blobs are little-endian; add byte swapping "
              "before enabling the disk cache on a big-endian host");
static_assert(std::numeric_limits<double>::is_iec559,
              "doubles are serialized as IEEE-754 bit patterns");

/** Guard against absurd counts from corrupt blobs: no artifact in
 * this codebase holds anywhere near this many elements, and refusing
 * early keeps a flipped length byte from driving a multi-GB
 * allocation before the CRC/truncation checks can reject it. */
constexpr std::uint64_t kMaxElements = 1ull << 33;

class Encoder
{
  public:
    void u8(std::uint8_t v) { _buf.push_back(static_cast<char>(v)); }

    template <typename T>
    void scalar(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        char raw[sizeof(T)];
        std::memcpy(raw, &v, sizeof(T));
        _buf.append(raw, sizeof(T));
    }

    void u16(std::uint16_t v) { scalar(v); }
    void u32(std::uint32_t v) { scalar(v); }
    void u64(std::uint64_t v) { scalar(v); }
    void f64(double v) { scalar(std::bit_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void str(const std::string &s)
    {
        u64(s.size());
        _buf.append(s);
    }

    /** Bulk column of a padding-free scalar type. */
    template <typename T>
    void column(const std::vector<T> &v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        u64(v.size());
        if (!v.empty())
            _buf.append(reinterpret_cast<const char *>(v.data()),
                        v.size() * sizeof(T));
    }

    void bits(const std::vector<bool> &v)
    {
        u64(v.size());
        std::uint64_t word = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v[i])
                word |= 1ull << (i & 63);
            if ((i & 63) == 63) {
                u64(word);
                word = 0;
            }
        }
        if (v.size() & 63)
            u64(word);
    }

    std::string take() { return std::move(_buf); }

  private:
    std::string _buf;
};

class Decoder
{
  public:
    Decoder(const void *data, std::size_t len)
        : _p(static_cast<const unsigned char *>(data)), _len(len)
    {
    }

    bool ok() const { return _ok; }
    bool done() const { return _ok && _pos == _len; }

    template <typename T>
    T scalar()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v{};
        if (!take(sizeof(T)))
            return v;
        std::memcpy(&v, _p + _pos - sizeof(T), sizeof(T));
        return v;
    }

    std::uint8_t u8() { return scalar<std::uint8_t>(); }
    std::uint16_t u16() { return scalar<std::uint16_t>(); }
    std::uint32_t u32() { return scalar<std::uint32_t>(); }
    std::uint64_t u64() { return scalar<std::uint64_t>(); }
    double f64() { return std::bit_cast<double>(u64()); }
    bool boolean() { return u8() != 0; }

    std::string str()
    {
        std::uint64_t n = u64();
        if (!take(n))
            return {};
        return std::string(
            reinterpret_cast<const char *>(_p + _pos - n),
            static_cast<std::size_t>(n));
    }

    template <typename T>
    void column(std::vector<T> *v)
    {
        std::uint64_t n = count(sizeof(T));
        if (!take(n * sizeof(T)))
            return;
        v->resize(static_cast<std::size_t>(n));
        if (n)
            std::memcpy(v->data(), _p + _pos - n * sizeof(T),
                        static_cast<std::size_t>(n) * sizeof(T));
    }

    void bits(std::vector<bool> *v)
    {
        std::uint64_t n = count(1);
        std::uint64_t words = (n + 63) / 64;
        if (!take(words * 8))
            return;
        v->assign(static_cast<std::size_t>(n), false);
        const unsigned char *base = _p + _pos - words * 8;
        for (std::uint64_t w = 0; w < words; ++w) {
            std::uint64_t word;
            std::memcpy(&word, base + w * 8, 8);
            std::uint64_t limit = std::min<std::uint64_t>(64, n - w * 64);
            for (std::uint64_t b = 0; b < limit; ++b)
                (*v)[static_cast<std::size_t>(w * 64 + b)] =
                    (word >> b) & 1;
        }
    }

    /** An element count, sanity-bounded so corrupt lengths fail
     * instead of allocating. */
    std::uint64_t count(std::size_t elem_size)
    {
        std::uint64_t n = u64();
        if (n > kMaxElements / (elem_size ? elem_size : 1)) {
            _ok = false;
            return 0;
        }
        return n;
    }

  private:
    bool take(std::uint64_t n)
    {
        if (!_ok || n > _len - _pos) {
            _ok = false;
            return false;
        }
        _pos += static_cast<std::size_t>(n);
        return true;
    }

    const unsigned char *_p;
    std::size_t _len;
    std::size_t _pos = 0;
    bool _ok = true;
};

// --- Program ---

void
putProgram(Encoder &e, const isa::Program &program)
{
    e.u64(program.size());
    for (const auto &inst : program.instructions())
        e.u64(inst.encode());
    e.u64(program.entry());
    e.u64(program.dataInits().size());
    for (const auto &init : program.dataInits()) {
        e.u64(init.addr);
        e.u64(init.value);
    }
    e.u64(program.labels().size());
    for (const auto &[name, index] : program.labels()) {
        e.str(name);
        e.u64(index);
    }
}

bool
getProgram(Decoder &d, isa::Program *program)
{
    std::uint64_t insts = d.count(8);
    for (std::uint64_t i = 0; d.ok() && i < insts; ++i) {
        isa::StaticInst inst;
        if (!isa::StaticInst::decode(d.u64(), inst))
            return false;
        program->append(inst);
    }
    program->setEntry(static_cast<std::size_t>(d.u64()));
    std::uint64_t data = d.count(16);
    for (std::uint64_t i = 0; d.ok() && i < data; ++i) {
        std::uint64_t addr = d.u64();
        std::uint64_t value = d.u64();
        program->addData(addr, value);
    }
    std::uint64_t labels = d.count(8);
    for (std::uint64_t i = 0; d.ok() && i < labels; ++i) {
        std::string name = d.str();
        std::uint64_t index = d.u64();
        if (!d.ok())
            break;
        program->defineLabel(name,
                             static_cast<std::size_t>(index));
    }
    return d.ok();
}

// --- SimTrace (program pointer excluded; fixed up by the caller) ---

void
putTrace(Encoder &e, const cpu::SimTrace &trace)
{
    e.u64(trace.commits.size());
    for (const auto &c : trace.commits) {
        e.u32(c.staticIdx);
        e.u8(c.qpTrue);
        e.u64(c.memAddr);
    }
    const cpu::IncarnationColumns &inc = trace.incarnations;
    e.column(inc.staticIdx);
    e.column(inc.oracleSeq);
    e.column(inc.enqueueCycle);
    e.column(inc.issueCycle);
    e.column(inc.evictCycle);
    e.column(inc.iqEntry);
    e.column(inc.flags);
    e.u64(trace.startCycle);
    e.u64(trace.endCycle);
    e.u64(trace.committedInsts);
    e.boolean(trace.programHalted);
    e.u32(trace.iqEntries);
}

bool
getTrace(Decoder &d, cpu::SimTrace *trace)
{
    std::uint64_t commits = d.count(13);
    trace->commits.reserve(static_cast<std::size_t>(
        d.ok() ? commits : 0));
    for (std::uint64_t i = 0; d.ok() && i < commits; ++i) {
        cpu::CommitRecord c;
        c.staticIdx = d.u32();
        c.qpTrue = d.u8();
        c.memAddr = d.u64();
        trace->commits.push_back(c);
    }
    cpu::IncarnationColumns &inc = trace->incarnations;
    d.column(&inc.staticIdx);
    d.column(&inc.oracleSeq);
    d.column(&inc.enqueueCycle);
    d.column(&inc.issueCycle);
    d.column(&inc.evictCycle);
    d.column(&inc.iqEntry);
    d.column(&inc.flags);
    trace->startCycle = d.u64();
    trace->endCycle = d.u64();
    trace->committedInsts = d.u64();
    trace->programHalted = d.boolean();
    trace->iqEntries = d.u32();
    // The columns must agree in length or the SoA gather is UB.
    if (inc.staticIdx.size() != inc.flags.size() ||
        inc.oracleSeq.size() != inc.flags.size() ||
        inc.enqueueCycle.size() != inc.flags.size() ||
        inc.issueCycle.size() != inc.flags.size() ||
        inc.evictCycle.size() != inc.flags.size() ||
        inc.iqEntry.size() != inc.flags.size())
    {
        return false;
    }
    return d.ok();
}

} // namespace

std::string
encodeSimProducts(const SimProducts &products)
{
    Encoder e;
    putProgram(e, *products.program);
    putTrace(e, products.trace);
    e.f64(products.ipc);
    e.str(products.statsDump);
    e.str(products.statsJson);
    static_assert(sizeof(cpu::IntervalSample) == 9 * 8,
                  "IntervalSample gained padding or fields; update "
                  "the codec and bump kSchemaVersion");
    e.u64(products.intervals.size());
    for (const auto &s : products.intervals) {
        e.u64(s.startCycle);
        e.u64(s.endCycle);
        e.u64(s.committed);
        e.u64(s.fetched);
        e.u64(s.mispredicts);
        e.u64(s.triggerSquashes);
        e.u64(s.triggerSquashedInsts);
        e.u64(s.iqValidEntryCycles);
        e.u64(s.iqWaitingEntryCycles);
    }
    e.u64(products.poolHighWater);
    e.u64(products.cyclesSkipped);
    return e.take();
}

bool
decodeSimProducts(const void *data, std::size_t len,
                  SimProducts *out)
{
    Decoder d(data, len);
    auto program = std::make_shared<isa::Program>();
    if (!getProgram(d, program.get()))
        return false;
    out->program = program;
    if (!getTrace(d, &out->trace))
        return false;
    out->trace.program = out->program.get();
    out->ipc = d.f64();
    out->statsDump = d.str();
    out->statsJson = d.str();
    std::uint64_t intervals = d.count(72);
    out->intervals.reserve(
        static_cast<std::size_t>(d.ok() ? intervals : 0));
    for (std::uint64_t i = 0; d.ok() && i < intervals; ++i) {
        cpu::IntervalSample s;
        s.startCycle = d.u64();
        s.endCycle = d.u64();
        s.committed = d.u64();
        s.fetched = d.u64();
        s.mispredicts = d.u64();
        s.triggerSquashes = d.u64();
        s.triggerSquashedInsts = d.u64();
        s.iqValidEntryCycles = d.u64();
        s.iqWaitingEntryCycles = d.u64();
        out->intervals.push_back(s);
    }
    out->poolHighWater = d.u64();
    out->cyclesSkipped = d.u64();
    return d.done();
}

std::string
encodeDeadness(const avf::DeadnessResult &result)
{
    Encoder e;
    e.column(result.kind);
    e.column(result.overwriteDist);
    e.bits(result.returnFdd);
    e.u64(result.numInsts);
    e.u64(result.numDefs);
    e.u64(result.numFddReg);
    e.u64(result.numTddReg);
    e.u64(result.numFddMem);
    e.u64(result.numTddMem);
    e.u64(result.numReturnFdd);
    return e.take();
}

bool
decodeDeadness(const void *data, std::size_t len,
               avf::DeadnessResult *out)
{
    Decoder d(data, len);
    d.column(&out->kind);
    d.column(&out->overwriteDist);
    d.bits(&out->returnFdd);
    out->numInsts = d.u64();
    out->numDefs = d.u64();
    out->numFddReg = d.u64();
    out->numTddReg = d.u64();
    out->numFddMem = d.u64();
    out->numTddMem = d.u64();
    out->numReturnFdd = d.u64();
    for (auto kind : out->kind) {
        if (static_cast<std::uint8_t>(kind) >
            static_cast<std::uint8_t>(avf::DeadKind::TddMem))
        {
            return false;
        }
    }
    return d.done();
}

std::string
encodeAvf(const avf::AvfResult &result)
{
    Encoder e;
    e.u64(result.windowCycles);
    e.u64(result.totalBitCycles);
    e.u64(result.idle);
    e.u64(result.exAce);
    e.u64(result.squashedUnread);
    e.u64(result.ace);
    e.u64(result.aceRefined);
    for (int s = 0; s < avf::numUnAceSources; ++s)
        e.u64(result.unAceRead[s]);
    for (int s = 0; s < avf::numUnAceSources; ++s)
        e.u64(result.unAceUnread[s]);
    e.u64(result.fddRegExposures.size());
    for (const auto &exp : result.fddRegExposures) {
        e.u64(exp.bitCycles);
        e.u32(exp.overwriteDist);
    }
    e.u64(result.epochs.size());
    for (const auto &epoch : result.epochs) {
        e.u64(epoch.startCycle);
        e.u64(epoch.cycles);
        e.u64(epoch.occupied);
        e.u64(epoch.ace);
        e.u64(epoch.unAceRead);
    }
    return e.take();
}

bool
decodeAvf(const void *data, std::size_t len, avf::AvfResult *out)
{
    Decoder d(data, len);
    out->windowCycles = d.u64();
    out->totalBitCycles = d.u64();
    out->idle = d.u64();
    out->exAce = d.u64();
    out->squashedUnread = d.u64();
    out->ace = d.u64();
    out->aceRefined = d.u64();
    for (int s = 0; s < avf::numUnAceSources; ++s)
        out->unAceRead[s] = d.u64();
    for (int s = 0; s < avf::numUnAceSources; ++s)
        out->unAceUnread[s] = d.u64();
    std::uint64_t exposures = d.count(12);
    out->fddRegExposures.reserve(
        static_cast<std::size_t>(d.ok() ? exposures : 0));
    for (std::uint64_t i = 0; d.ok() && i < exposures; ++i) {
        avf::FddExposure exp;
        exp.bitCycles = d.u64();
        exp.overwriteDist = d.u32();
        out->fddRegExposures.push_back(exp);
    }
    std::uint64_t epochs = d.count(40);
    out->epochs.reserve(
        static_cast<std::size_t>(d.ok() ? epochs : 0));
    for (std::uint64_t i = 0; d.ok() && i < epochs; ++i) {
        avf::EpochAce epoch;
        epoch.startCycle = d.u64();
        epoch.cycles = d.u64();
        epoch.occupied = d.u64();
        epoch.ace = d.u64();
        epoch.unAceRead = d.u64();
        out->epochs.push_back(epoch);
    }
    return d.done();
}

std::string
encodeCampaign(const faults::CampaignOutcome &outcome)
{
    Encoder e;
    e.u64(outcome.samplesRequested);
    e.u64(outcome.seed);
    e.u8(static_cast<std::uint8_t>(outcome.protection));
    e.boolean(outcome.payloadOnly);
    e.f64(outcome.ciTarget);
    e.u64(outcome.batchSamples);
    e.u64(outcome.samplesRun);
    e.boolean(outcome.earlyStopped);
    e.f64(outcome.ciHalfWidth);
    e.u64(outcome.reruns);
    e.u64(outcome.rerunSteps);
    e.u64(outcome.goldenSteps);
    e.u64(outcome.checkpoints);
    e.u64(outcome.structures.size());
    for (const auto &s : outcome.structures) {
        e.u8(static_cast<std::uint8_t>(s.structure));
        e.u64(s.weight);
        e.u64(s.tally.samples);
        for (int o = 0; o < faults::numOutcomes; ++o)
            e.u64(s.tally.counts[static_cast<std::size_t>(o)]);
        e.f64(s.sdcCi.lo);
        e.f64(s.sdcCi.hi);
        e.f64(s.dueCi.lo);
        e.f64(s.dueCi.hi);
        e.f64(s.analyticalSdc);
        e.f64(s.analyticalSdcLower);
        e.f64(s.analyticalDue);
        e.f64(s.analyticalDueLower);
        e.boolean(s.sdcCovered);
        e.boolean(s.dueCovered);
    }
    e.u64(outcome.rootCauses.size());
    for (const auto &rc : outcome.rootCauses) {
        e.u32(rc.staticIdx);
        e.u64(rc.sdcInjections);
        e.f64(rc.measuredShare);
        e.f64(rc.analyticalAceShare);
    }
    e.u64(outcome.convergence.size());
    for (const auto &point : outcome.convergence) {
        e.u64(point.batch);
        e.u64(point.samples);
        e.f64(point.worstHalfWidth);
        e.u64(point.structures.size());
        for (const auto &sp : point.structures) {
            e.u8(static_cast<std::uint8_t>(sp.structure));
            e.u64(sp.samples);
            e.f64(sp.sdcRate);
            e.f64(sp.sdcHalfWidth);
            e.f64(sp.dueRate);
            e.f64(sp.dueHalfWidth);
        }
    }
    return e.take();
}

bool
decodeCampaign(const void *data, std::size_t len,
               faults::CampaignOutcome *out)
{
    Decoder d(data, len);
    out->samplesRequested = d.u64();
    out->seed = d.u64();
    out->protection = static_cast<faults::Protection>(d.u8());
    out->payloadOnly = d.boolean();
    out->ciTarget = d.f64();
    out->batchSamples = d.u64();
    out->samplesRun = d.u64();
    out->earlyStopped = d.boolean();
    out->ciHalfWidth = d.f64();
    out->reruns = d.u64();
    out->rerunSteps = d.u64();
    out->goldenSteps = d.u64();
    out->checkpoints = d.u64();
    std::uint64_t structures = d.count(137);
    out->structures.reserve(
        static_cast<std::size_t>(d.ok() ? structures : 0));
    for (std::uint64_t i = 0; d.ok() && i < structures; ++i) {
        faults::StructureCampaign s;
        s.structure = static_cast<faults::Structure>(d.u8());
        s.weight = d.u64();
        s.tally.samples = d.u64();
        for (int o = 0; o < faults::numOutcomes; ++o)
            s.tally.counts[static_cast<std::size_t>(o)] = d.u64();
        s.sdcCi.lo = d.f64();
        s.sdcCi.hi = d.f64();
        s.dueCi.lo = d.f64();
        s.dueCi.hi = d.f64();
        s.analyticalSdc = d.f64();
        s.analyticalSdcLower = d.f64();
        s.analyticalDue = d.f64();
        s.analyticalDueLower = d.f64();
        s.sdcCovered = d.boolean();
        s.dueCovered = d.boolean();
        out->structures.push_back(s);
    }
    std::uint64_t causes = d.count(28);
    out->rootCauses.reserve(
        static_cast<std::size_t>(d.ok() ? causes : 0));
    for (std::uint64_t i = 0; d.ok() && i < causes; ++i) {
        faults::RootCause rc;
        rc.staticIdx = d.u32();
        rc.sdcInjections = d.u64();
        rc.measuredShare = d.f64();
        rc.analyticalAceShare = d.f64();
        out->rootCauses.push_back(rc);
    }
    std::uint64_t points = d.count(32);
    out->convergence.reserve(
        static_cast<std::size_t>(d.ok() ? points : 0));
    for (std::uint64_t i = 0; d.ok() && i < points; ++i) {
        faults::ConvergencePoint point;
        point.batch = d.u64();
        point.samples = d.u64();
        point.worstHalfWidth = d.f64();
        std::uint64_t sps = d.count(41);
        point.structures.reserve(
            static_cast<std::size_t>(d.ok() ? sps : 0));
        for (std::uint64_t j = 0; d.ok() && j < sps; ++j) {
            faults::ConvergencePoint::StructurePoint sp;
            sp.structure = static_cast<faults::Structure>(d.u8());
            sp.samples = d.u64();
            sp.sdcRate = d.f64();
            sp.sdcHalfWidth = d.f64();
            sp.dueRate = d.f64();
            sp.dueHalfWidth = d.f64();
            point.structures.push_back(sp);
        }
        out->convergence.push_back(point);
    }
    return d.done();
}

} // namespace codec
} // namespace harness
} // namespace ser
