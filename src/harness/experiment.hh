/**
 * @file
 * The experiment driver: benchmark x configuration -> results.
 *
 * Wraps the whole flow the benches and examples share: build (or
 * accept) a program, run the timing model with the configured
 * trigger/action policy, run the deadness analysis and the AVF fold,
 * and derive the false-DUE coverage. Heavyweight artifacts (trace,
 * deadness labels) are returned so callers like the PET-sweep bench
 * can do further analysis before dropping them.
 */

#ifndef SER_HARNESS_EXPERIMENT_HH
#define SER_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "avf/attribution.hh"
#include "avf/avf.hh"
#include "avf/deadness.hh"
#include "core/due_tracker.hh"
#include "faults/campaign_engine.hh"
#include "cpu/params.hh"
#include "cpu/sampler.hh"
#include "cpu/trace.hh"
#include "harness/run_cache.hh"
#include "isa/program.hh"
#include "sim/timing.hh"
#include "workloads/profile.hh"

namespace ser
{
namespace harness
{

/** One experiment's configuration. */
struct ExperimentConfig
{
    /** Dynamic instructions the generated workload targets. */
    std::uint64_t dynamicTarget = 1'000'000;

    /** Commits before the measurement window opens. */
    std::uint64_t warmupInsts = 50'000;

    /** Exposure trigger: "none", "l0", "l1", "l2". */
    std::string triggerLevel = "none";

    /** Action when it fires: "squash", "throttle", "both". */
    std::string triggerAction = "squash";

    /** PET-buffer size for the false-DUE analysis. */
    std::uint32_t petSize = 512;

    /** Interval time-series epoch size in cycles; 0 disables the
     * sampler (and the per-epoch AVF fold). */
    std::uint64_t intervalCycles = 0;

    /** Nonzero enables instruction-lifetime trace capture; the value
     * becomes the run's trace process id (one distinct pid per run,
     * so merged sweep traces keep their runs on separate process
     * rows and stay deterministic under --jobs). */
    std::uint32_t traceEventsPid = 0;

    /** Nonzero enables the per-PC AVF attribution fold; the value is
     * the hotspot-table depth (--topn). */
    std::uint32_t attributionTopN = 0;

    /** Statistical fault-injection campaign against the finished
     * run; campaign.samples == 0 (the default) disables it. */
    faults::CampaignSpec campaign;

    cpu::PipelineParams pipeline;
};

/** Everything one run produces. */
struct RunArtifacts
{
    std::string benchmark;
    double ipc = 0.0;

    /** Workload generator seed (0 for externally built programs). */
    std::uint64_t seed = 0;

    /** The artifacts share ownership of the program so
     * trace->program stays valid for post-hoc analyses after the
     * caller's copy is gone. Const: a suite sweep hands the same
     * program to many concurrent runs read-only. On a run-cache hit
     * this is the cache's canonical program (content-identical to
     * the one submitted). */
    std::shared_ptr<const isa::Program> program;

    /** Heavyweight artifacts are shared const: sweep points with
     * identical timing behaviour receive pointer-identical traces
     * and analyses from the run cache (run_cache.hh) instead of
     * recomputing them. falseDue stays a value — it depends on the
     * per-point PET size. */
    std::shared_ptr<const cpu::SimTrace> trace;
    std::shared_ptr<const avf::DeadnessResult> deadness;
    std::shared_ptr<const avf::AvfResult> avf;
    core::FalseDueAnalysis falseDue;

    /** Most DynInst pool slots simultaneously live in this run's
     * pipeline (shared across cache hits of the same simulation). */
    std::uint64_t poolHighWater = 0;

    /** Cycles the pipeline's event-driven scheduler fast-forwarded
     * over instead of ticking (0 under --no-cycle-skip; shared
     * across cache hits of the same simulation). */
    std::uint64_t cyclesSkipped = 0;

    /** Measured-AVF campaign results; null unless campaign.samples
     * was set. Shared const for the same reason as the analyses. */
    std::shared_ptr<const faults::CampaignOutcome> campaign;

    /** Per-section run-cache outcome for the manifest. "off" when
     * the cache is disabled or the run captures trace events. */
    CacheOutcome cacheSim = CacheOutcome::Off;
    CacheOutcome cacheDeadness = CacheOutcome::Off;
    CacheOutcome cacheAvf = CacheOutcome::Off;
    CacheOutcome cacheCampaign = CacheOutcome::Off;

    /** Stats dump of the pipeline tree (cache, predictor, ...). */
    std::string statsDump;

    /** The same stats tree as a JSON object (for the manifest). */
    std::string statsJson;

    /** Wall-clock time of each phase (build, pipeline, ...). */
    PhaseTimings timings;

    /** Interval time series; empty unless intervalCycles was set. */
    std::vector<cpu::IntervalSample> intervals;

    /** This run's Chrome trace-event fragment; empty unless
     * traceEventsPid was set (see sim/trace_event.hh). */
    std::string traceEvents;

    /** Per-PC AVF attribution; pcs is empty unless attributionTopN
     * was set. */
    avf::AttributionResult attribution;
};

/** Run one program under one configuration (deep-copies the
 * program into the artifacts). */
RunArtifacts runProgram(const isa::Program &program,
                        const ExperimentConfig &config,
                        const std::string &name = "program");

/**
 * Run one program under one configuration without copying it: the
 * artifacts share ownership. The program is only read, so one build
 * can feed every design point of a sweep — including concurrent
 * runs on SuiteRunner workers.
 */
RunArtifacts runProgram(std::shared_ptr<const isa::Program> program,
                        const ExperimentConfig &config,
                        const std::string &name = "program");

/** Prepend earlier-phase timings (e.g. the one-time workload build)
 * to a run's timings, keeping manifest phase order chronological.
 * Shared by runBenchmark() and the suite-runner path so the build
 * phase is recorded exactly once per built program. */
void prependTimings(PhaseTimings head, RunArtifacts &run);

/** Build the named surrogate and run it. */
RunArtifacts runBenchmark(const std::string &name,
                          const ExperimentConfig &config);

/** Build a surrogate from a profile and run it. */
RunArtifacts runBenchmark(const workloads::BenchmarkProfile &profile,
                          const ExperimentConfig &config);

} // namespace harness
} // namespace ser

#endif // SER_HARNESS_EXPERIMENT_HH
