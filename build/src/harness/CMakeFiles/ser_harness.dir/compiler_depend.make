# Empty compiler generated dependencies file for ser_harness.
# This may be replaced when dependencies are built.
