file(REMOVE_RECURSE
  "libser_harness.a"
)
