file(REMOVE_RECURSE
  "CMakeFiles/ser_harness.dir/experiment.cc.o"
  "CMakeFiles/ser_harness.dir/experiment.cc.o.d"
  "CMakeFiles/ser_harness.dir/reporting.cc.o"
  "CMakeFiles/ser_harness.dir/reporting.cc.o.d"
  "libser_harness.a"
  "libser_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
