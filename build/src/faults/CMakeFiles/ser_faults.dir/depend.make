# Empty dependencies file for ser_faults.
# This may be replaced when dependencies are built.
