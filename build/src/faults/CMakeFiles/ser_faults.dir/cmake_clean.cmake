file(REMOVE_RECURSE
  "CMakeFiles/ser_faults.dir/campaign.cc.o"
  "CMakeFiles/ser_faults.dir/campaign.cc.o.d"
  "CMakeFiles/ser_faults.dir/injector.cc.o"
  "CMakeFiles/ser_faults.dir/injector.cc.o.d"
  "libser_faults.a"
  "libser_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
