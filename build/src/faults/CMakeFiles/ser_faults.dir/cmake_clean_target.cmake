file(REMOVE_RECURSE
  "libser_faults.a"
)
