file(REMOVE_RECURSE
  "CMakeFiles/ser_memory.dir/cache.cc.o"
  "CMakeFiles/ser_memory.dir/cache.cc.o.d"
  "CMakeFiles/ser_memory.dir/hierarchy.cc.o"
  "CMakeFiles/ser_memory.dir/hierarchy.cc.o.d"
  "libser_memory.a"
  "libser_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
