file(REMOVE_RECURSE
  "libser_memory.a"
)
