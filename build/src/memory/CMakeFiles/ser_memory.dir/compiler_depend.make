# Empty compiler generated dependencies file for ser_memory.
# This may be replaced when dependencies are built.
