# Empty compiler generated dependencies file for ser_isa.
# This may be replaced when dependencies are built.
