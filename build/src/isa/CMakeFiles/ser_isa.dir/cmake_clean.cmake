file(REMOVE_RECURSE
  "CMakeFiles/ser_isa.dir/arch_state.cc.o"
  "CMakeFiles/ser_isa.dir/arch_state.cc.o.d"
  "CMakeFiles/ser_isa.dir/assembler.cc.o"
  "CMakeFiles/ser_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ser_isa.dir/encoding.cc.o"
  "CMakeFiles/ser_isa.dir/encoding.cc.o.d"
  "CMakeFiles/ser_isa.dir/executor.cc.o"
  "CMakeFiles/ser_isa.dir/executor.cc.o.d"
  "CMakeFiles/ser_isa.dir/isa.cc.o"
  "CMakeFiles/ser_isa.dir/isa.cc.o.d"
  "CMakeFiles/ser_isa.dir/program.cc.o"
  "CMakeFiles/ser_isa.dir/program.cc.o.d"
  "CMakeFiles/ser_isa.dir/static_inst.cc.o"
  "CMakeFiles/ser_isa.dir/static_inst.cc.o.d"
  "libser_isa.a"
  "libser_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
