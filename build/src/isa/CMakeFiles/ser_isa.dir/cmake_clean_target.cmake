file(REMOVE_RECURSE
  "libser_isa.a"
)
