# Empty compiler generated dependencies file for ser_branch.
# This may be replaced when dependencies are built.
