file(REMOVE_RECURSE
  "CMakeFiles/ser_branch.dir/btb.cc.o"
  "CMakeFiles/ser_branch.dir/btb.cc.o.d"
  "CMakeFiles/ser_branch.dir/predictor.cc.o"
  "CMakeFiles/ser_branch.dir/predictor.cc.o.d"
  "CMakeFiles/ser_branch.dir/ras.cc.o"
  "CMakeFiles/ser_branch.dir/ras.cc.o.d"
  "libser_branch.a"
  "libser_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
