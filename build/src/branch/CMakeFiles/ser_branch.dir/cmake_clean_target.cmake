file(REMOVE_RECURSE
  "libser_branch.a"
)
