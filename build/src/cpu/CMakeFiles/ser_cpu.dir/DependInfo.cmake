
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/pipeline.cc" "src/cpu/CMakeFiles/ser_cpu.dir/pipeline.cc.o" "gcc" "src/cpu/CMakeFiles/ser_cpu.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ser_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ser_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ser_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/ser_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
