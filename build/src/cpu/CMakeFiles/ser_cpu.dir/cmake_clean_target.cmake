file(REMOVE_RECURSE
  "libser_cpu.a"
)
