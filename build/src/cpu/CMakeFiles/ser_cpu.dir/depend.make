# Empty dependencies file for ser_cpu.
# This may be replaced when dependencies are built.
