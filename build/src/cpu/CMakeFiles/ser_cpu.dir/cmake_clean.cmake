file(REMOVE_RECURSE
  "CMakeFiles/ser_cpu.dir/pipeline.cc.o"
  "CMakeFiles/ser_cpu.dir/pipeline.cc.o.d"
  "libser_cpu.a"
  "libser_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
