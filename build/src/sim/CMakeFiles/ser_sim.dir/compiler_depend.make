# Empty compiler generated dependencies file for ser_sim.
# This may be replaced when dependencies are built.
