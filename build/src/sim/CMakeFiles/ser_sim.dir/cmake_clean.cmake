file(REMOVE_RECURSE
  "CMakeFiles/ser_sim.dir/config.cc.o"
  "CMakeFiles/ser_sim.dir/config.cc.o.d"
  "CMakeFiles/ser_sim.dir/logging.cc.o"
  "CMakeFiles/ser_sim.dir/logging.cc.o.d"
  "CMakeFiles/ser_sim.dir/rng.cc.o"
  "CMakeFiles/ser_sim.dir/rng.cc.o.d"
  "CMakeFiles/ser_sim.dir/stats.cc.o"
  "CMakeFiles/ser_sim.dir/stats.cc.o.d"
  "libser_sim.a"
  "libser_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
