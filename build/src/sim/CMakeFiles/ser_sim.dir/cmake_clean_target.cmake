file(REMOVE_RECURSE
  "libser_sim.a"
)
