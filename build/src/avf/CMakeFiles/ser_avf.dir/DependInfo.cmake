
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avf/avf.cc" "src/avf/CMakeFiles/ser_avf.dir/avf.cc.o" "gcc" "src/avf/CMakeFiles/ser_avf.dir/avf.cc.o.d"
  "/root/repo/src/avf/deadness.cc" "src/avf/CMakeFiles/ser_avf.dir/deadness.cc.o" "gcc" "src/avf/CMakeFiles/ser_avf.dir/deadness.cc.o.d"
  "/root/repo/src/avf/mitf.cc" "src/avf/CMakeFiles/ser_avf.dir/mitf.cc.o" "gcc" "src/avf/CMakeFiles/ser_avf.dir/mitf.cc.o.d"
  "/root/repo/src/avf/range_min.cc" "src/avf/CMakeFiles/ser_avf.dir/range_min.cc.o" "gcc" "src/avf/CMakeFiles/ser_avf.dir/range_min.cc.o.d"
  "/root/repo/src/avf/regfile_avf.cc" "src/avf/CMakeFiles/ser_avf.dir/regfile_avf.cc.o" "gcc" "src/avf/CMakeFiles/ser_avf.dir/regfile_avf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ser_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ser_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ser_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ser_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/ser_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
