file(REMOVE_RECURSE
  "libser_avf.a"
)
