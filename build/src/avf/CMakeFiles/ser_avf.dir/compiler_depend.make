# Empty compiler generated dependencies file for ser_avf.
# This may be replaced when dependencies are built.
