file(REMOVE_RECURSE
  "CMakeFiles/ser_avf.dir/avf.cc.o"
  "CMakeFiles/ser_avf.dir/avf.cc.o.d"
  "CMakeFiles/ser_avf.dir/deadness.cc.o"
  "CMakeFiles/ser_avf.dir/deadness.cc.o.d"
  "CMakeFiles/ser_avf.dir/mitf.cc.o"
  "CMakeFiles/ser_avf.dir/mitf.cc.o.d"
  "CMakeFiles/ser_avf.dir/range_min.cc.o"
  "CMakeFiles/ser_avf.dir/range_min.cc.o.d"
  "CMakeFiles/ser_avf.dir/regfile_avf.cc.o"
  "CMakeFiles/ser_avf.dir/regfile_avf.cc.o.d"
  "libser_avf.a"
  "libser_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
