# Empty dependencies file for ser_workloads.
# This may be replaced when dependencies are built.
