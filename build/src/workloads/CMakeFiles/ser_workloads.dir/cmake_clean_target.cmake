file(REMOVE_RECURSE
  "libser_workloads.a"
)
