file(REMOVE_RECURSE
  "CMakeFiles/ser_workloads.dir/builder.cc.o"
  "CMakeFiles/ser_workloads.dir/builder.cc.o.d"
  "CMakeFiles/ser_workloads.dir/kernels.cc.o"
  "CMakeFiles/ser_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/ser_workloads.dir/profile.cc.o"
  "CMakeFiles/ser_workloads.dir/profile.cc.o.d"
  "CMakeFiles/ser_workloads.dir/random_program.cc.o"
  "CMakeFiles/ser_workloads.dir/random_program.cc.o.d"
  "CMakeFiles/ser_workloads.dir/suite.cc.o"
  "CMakeFiles/ser_workloads.dir/suite.cc.o.d"
  "libser_workloads.a"
  "libser_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
