# Empty compiler generated dependencies file for ser_core.
# This may be replaced when dependencies are built.
