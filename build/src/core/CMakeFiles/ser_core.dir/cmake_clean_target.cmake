file(REMOVE_RECURSE
  "libser_core.a"
)
