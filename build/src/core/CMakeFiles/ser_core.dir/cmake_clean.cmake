file(REMOVE_RECURSE
  "CMakeFiles/ser_core.dir/due_tracker.cc.o"
  "CMakeFiles/ser_core.dir/due_tracker.cc.o.d"
  "CMakeFiles/ser_core.dir/pet_buffer.cc.o"
  "CMakeFiles/ser_core.dir/pet_buffer.cc.o.d"
  "CMakeFiles/ser_core.dir/pi_machine.cc.o"
  "CMakeFiles/ser_core.dir/pi_machine.cc.o.d"
  "CMakeFiles/ser_core.dir/tracked_injection.cc.o"
  "CMakeFiles/ser_core.dir/tracked_injection.cc.o.d"
  "CMakeFiles/ser_core.dir/tracking.cc.o"
  "CMakeFiles/ser_core.dir/tracking.cc.o.d"
  "CMakeFiles/ser_core.dir/trigger.cc.o"
  "CMakeFiles/ser_core.dir/trigger.cc.o.d"
  "libser_core.a"
  "libser_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
