
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/due_tracker.cc" "src/core/CMakeFiles/ser_core.dir/due_tracker.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/due_tracker.cc.o.d"
  "/root/repo/src/core/pet_buffer.cc" "src/core/CMakeFiles/ser_core.dir/pet_buffer.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/pet_buffer.cc.o.d"
  "/root/repo/src/core/pi_machine.cc" "src/core/CMakeFiles/ser_core.dir/pi_machine.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/pi_machine.cc.o.d"
  "/root/repo/src/core/tracked_injection.cc" "src/core/CMakeFiles/ser_core.dir/tracked_injection.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/tracked_injection.cc.o.d"
  "/root/repo/src/core/tracking.cc" "src/core/CMakeFiles/ser_core.dir/tracking.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/tracking.cc.o.d"
  "/root/repo/src/core/trigger.cc" "src/core/CMakeFiles/ser_core.dir/trigger.cc.o" "gcc" "src/core/CMakeFiles/ser_core.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ser_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ser_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ser_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/avf/CMakeFiles/ser_avf.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ser_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ser_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/ser_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
