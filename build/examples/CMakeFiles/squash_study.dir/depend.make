# Empty dependencies file for squash_study.
# This may be replaced when dependencies are built.
