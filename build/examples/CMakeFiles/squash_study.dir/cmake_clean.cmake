file(REMOVE_RECURSE
  "CMakeFiles/squash_study.dir/squash_study.cpp.o"
  "CMakeFiles/squash_study.dir/squash_study.cpp.o.d"
  "squash_study"
  "squash_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
