# Empty compiler generated dependencies file for false_due_tracking.
# This may be replaced when dependencies are built.
