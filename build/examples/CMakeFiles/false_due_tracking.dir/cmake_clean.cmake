file(REMOVE_RECURSE
  "CMakeFiles/false_due_tracking.dir/false_due_tracking.cpp.o"
  "CMakeFiles/false_due_tracking.dir/false_due_tracking.cpp.o.d"
  "false_due_tracking"
  "false_due_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_due_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
