# Empty dependencies file for fit_budget.
# This may be replaced when dependencies are built.
