file(REMOVE_RECURSE
  "CMakeFiles/fit_budget.dir/fit_budget.cpp.o"
  "CMakeFiles/fit_budget.dir/fit_budget.cpp.o.d"
  "fit_budget"
  "fit_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
