file(REMOVE_RECURSE
  "CMakeFiles/ext_regfile_avf.dir/ext_regfile_avf.cc.o"
  "CMakeFiles/ext_regfile_avf.dir/ext_regfile_avf.cc.o.d"
  "ext_regfile_avf"
  "ext_regfile_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_regfile_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
