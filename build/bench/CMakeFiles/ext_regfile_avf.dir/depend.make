# Empty dependencies file for ext_regfile_avf.
# This may be replaced when dependencies are built.
