file(REMOVE_RECURSE
  "CMakeFiles/fig4_combined.dir/fig4_combined.cc.o"
  "CMakeFiles/fig4_combined.dir/fig4_combined.cc.o.d"
  "fig4_combined"
  "fig4_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
