# Empty dependencies file for fig4_combined.
# This may be replaced when dependencies are built.
