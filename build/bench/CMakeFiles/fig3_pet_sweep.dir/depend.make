# Empty dependencies file for fig3_pet_sweep.
# This may be replaced when dependencies are built.
