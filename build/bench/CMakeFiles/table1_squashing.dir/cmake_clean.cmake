file(REMOVE_RECURSE
  "CMakeFiles/table1_squashing.dir/table1_squashing.cc.o"
  "CMakeFiles/table1_squashing.dir/table1_squashing.cc.o.d"
  "table1_squashing"
  "table1_squashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_squashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
