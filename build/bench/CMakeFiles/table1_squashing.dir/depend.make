# Empty dependencies file for table1_squashing.
# This may be replaced when dependencies are built.
