# Empty dependencies file for ablation_pi_granularity.
# This may be replaced when dependencies are built.
