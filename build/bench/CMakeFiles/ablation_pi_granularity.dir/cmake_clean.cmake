file(REMOVE_RECURSE
  "CMakeFiles/ablation_pi_granularity.dir/ablation_pi_granularity.cc.o"
  "CMakeFiles/ablation_pi_granularity.dir/ablation_pi_granularity.cc.o.d"
  "ablation_pi_granularity"
  "ablation_pi_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pi_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
