file(REMOVE_RECURSE
  "CMakeFiles/ablation_anti_pi.dir/ablation_anti_pi.cc.o"
  "CMakeFiles/ablation_anti_pi.dir/ablation_anti_pi.cc.o.d"
  "ablation_anti_pi"
  "ablation_anti_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anti_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
