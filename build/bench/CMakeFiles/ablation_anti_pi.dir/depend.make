# Empty dependencies file for ablation_anti_pi.
# This may be replaced when dependencies are built.
