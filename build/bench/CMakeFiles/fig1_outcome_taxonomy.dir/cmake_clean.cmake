file(REMOVE_RECURSE
  "CMakeFiles/fig1_outcome_taxonomy.dir/fig1_outcome_taxonomy.cc.o"
  "CMakeFiles/fig1_outcome_taxonomy.dir/fig1_outcome_taxonomy.cc.o.d"
  "fig1_outcome_taxonomy"
  "fig1_outcome_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_outcome_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
