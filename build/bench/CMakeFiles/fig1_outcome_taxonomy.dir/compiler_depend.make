# Empty compiler generated dependencies file for fig1_outcome_taxonomy.
# This may be replaced when dependencies are built.
