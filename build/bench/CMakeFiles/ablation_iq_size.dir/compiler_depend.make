# Empty compiler generated dependencies file for ablation_iq_size.
# This may be replaced when dependencies are built.
