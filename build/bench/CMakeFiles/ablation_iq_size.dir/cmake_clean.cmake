file(REMOVE_RECURSE
  "CMakeFiles/ablation_iq_size.dir/ablation_iq_size.cc.o"
  "CMakeFiles/ablation_iq_size.dir/ablation_iq_size.cc.o.d"
  "ablation_iq_size"
  "ablation_iq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
