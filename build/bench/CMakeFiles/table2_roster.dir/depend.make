# Empty dependencies file for table2_roster.
# This may be replaced when dependencies are built.
