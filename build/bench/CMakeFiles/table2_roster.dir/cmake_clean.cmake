file(REMOVE_RECURSE
  "CMakeFiles/table2_roster.dir/table2_roster.cc.o"
  "CMakeFiles/table2_roster.dir/table2_roster.cc.o.d"
  "table2_roster"
  "table2_roster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
