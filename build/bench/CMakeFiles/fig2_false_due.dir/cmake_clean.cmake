file(REMOVE_RECURSE
  "CMakeFiles/fig2_false_due.dir/fig2_false_due.cc.o"
  "CMakeFiles/fig2_false_due.dir/fig2_false_due.cc.o.d"
  "fig2_false_due"
  "fig2_false_due.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_false_due.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
