# Empty compiler generated dependencies file for fig2_false_due.
# This may be replaced when dependencies are built.
