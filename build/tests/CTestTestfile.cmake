# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_branch "/root/repo/build/tests/test_branch")
set_tests_properties(test_branch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_avf "/root/repo/build/tests/test_avf")
set_tests_properties(test_avf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_faults "/root/repo/build/tests/test_faults")
set_tests_properties(test_faults PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;ser_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;ser_test;/root/repo/tests/CMakeLists.txt;0;")
