#!/usr/bin/env python3
"""Compare two Google-Benchmark JSON captures.

Usage:
    scripts/bench_compare.py BEFORE.json AFTER.json [--threshold PCT]

Prints one row per benchmark with the before/after real_time and the
delta, then exits nonzero when any benchmark present in both captures
regressed by more than the threshold (default 10% real_time). Rows
present on only one side are reported but never fail the check (new
benchmarks appear, retired ones disappear).

Either input may be a raw capture (a google-benchmark JSON document
with a top-level "benchmarks" array) or a merged before/after record
as committed in BENCH_PR*.json; for the merged form the "after"
section is used, so

    scripts/bench_compare.py BENCH_PR4.json bench_after.json

compares the PR 4 state against a fresh capture.
"""

import argparse
import json
import sys


def load_rows(path):
    """Map benchmark name -> {real_time, time_unit} from a capture.

    A capture taken with --benchmark_repetitions=N carries one
    iteration row per repetition; we keep the minimum. Timing noise
    on a shared machine is one-sided (scheduler steal only ever adds
    time), so best-of-N converges on the true cost and makes the
    comparison robust where a single sample or the mean flakes.
    """
    with open(path) as f:
        doc = json.load(f)
    # A merged {"before", "after", "summary"} record: take "after".
    if "benchmarks" not in doc and "after" in doc:
        doc = doc["after"]
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        row = rows.get(bench["name"])
        if row is None or bench["real_time"] < row["real_time"]:
            rows[bench["name"]] = {
                "real_time": bench["real_time"],
                "time_unit": bench.get("time_unit", "ns"),
            }
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON captures.")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="fail on real_time regressions above this percentage "
             "(default: %(default)s)")
    parser.add_argument(
        "--calibrate", metavar="NAME", default=None,
        help="scale every 'after' time by NAME's before/after ratio. "
             "NAME should be a benchmark the change under test did "
             "not touch: its drift measures the machine, not the "
             "code, and dividing it out turns the absolute "
             "comparison into a relative one that survives captures "
             "taken on a slower or noisier host than the baseline.")
    args = parser.parse_args()

    before = load_rows(args.before)
    after = load_rows(args.after)

    if args.calibrate:
        cal_b = before.get(args.calibrate)
        cal_a = after.get(args.calibrate)
        if cal_b is None or cal_a is None:
            print(f"bench_compare: calibration benchmark "
                  f"'{args.calibrate}' missing from "
                  f"{'both' if cal_b is cal_a else 'one'} capture(s)",
                  file=sys.stderr)
            return 2
        scale = cal_b["real_time"] / cal_a["real_time"]
        print(f"calibrating on {args.calibrate}: machine speed "
              f"factor {1 / scale:.3f}x vs baseline")
        for row in after.values():
            row["real_time"] *= scale

    width = max((len(n) for n in set(before) | set(after)), default=4)
    regressions = []
    print(f"{'benchmark':<{width}}  {'before':>12}  {'after':>12}  "
          f"{'delta':>8}")
    for name in sorted(set(before) | set(after)):
        b = before.get(name)
        a = after.get(name)
        if b is None:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{a['real_time']:>12.0f}  {'new':>8}")
            continue
        if a is None:
            print(f"{name:<{width}}  {b['real_time']:>12.0f}  "
                  f"{'-':>12}  {'gone':>8}")
            continue
        delta = ((a["real_time"] - b["real_time"]) / b["real_time"]
                 * 100.0 if b["real_time"] else 0.0)
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b['real_time']:>12.0f}  "
              f"{a['real_time']:>12.0f}  {delta:>+7.1f}%{flag}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} benchmark(s) "
              f"regressed more than {args.threshold:.1f}%:",
              file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print("\nbench_compare: no regressions above "
          f"{args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
