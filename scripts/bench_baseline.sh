#!/bin/sh
# Capture the simulator microbenchmarks (google-benchmark JSON) and
# fold them into a committed before/after record.
#
# Usage:
#     scripts/bench_baseline.sh [BUILD_DIR] [OUT.json]
#
# Runs BUILD_DIR/bench/perf_microbench (default: build) and writes
# the capture to OUT.json (default: bench_after.json, gitignored).
# When BENCH_BEFORE names an earlier capture, the script instead
# writes a merged {"before", "after", "summary"} document — the
# format committed as BENCH_PR4.json — where summary holds one
# {before, after, speedup} row per benchmark (real time, in each
# benchmark's own time_unit).
#
# The filter keeps the stable macro-level benchmarks: the timing
# pipeline, the two analysis folds, the sampler batch advance, the
# end-to-end sweep, and the run-cache hit path (benchmarks absent
# from older captures are tolerated: the merge allows rows missing
# on either side).
set -eu

build="${1:-build}"
out="${2:-bench_after.json}"
bin="$build/bench/perf_microbench"
if [ ! -x "$bin" ]; then
    echo "bench_baseline.sh: $bin not built (cmake --build $build)" >&2
    exit 1
fi

filter='BM_TimingPipeline$|BM_TimingPipelineLongLat|BM_DeadnessAnalysis|BM_AvfFold|BM_IntervalSamplerAdvance|BM_SuiteRunnerSweep|BM_RunProgramCacheHit'
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
"$bin" --benchmark_filter="$filter" \
       --benchmark_out="$tmp" --benchmark_out_format=json \
       --benchmark_format=console

if [ -z "${BENCH_BEFORE:-}" ]; then
    cp "$tmp" "$out"
    echo "bench_baseline.sh: capture written to $out"
    echo "  (set BENCH_BEFORE=old_capture.json to emit a merged" \
         "before/after record)"
    exit 0
fi

python3 - "$BENCH_BEFORE" "$tmp" "$out" <<'EOF'
import json, sys

before_path, after_path, out_path = sys.argv[1:4]
before = json.load(open(before_path))
after = json.load(open(after_path))

def rows(doc):
    return {b["name"]: b for b in doc.get("benchmarks", [])}

b, a = rows(before), rows(after)
summary = {}
for name in sorted(set(b) | set(a)):
    row = {}
    if name in b:
        row["before"] = b[name]["real_time"]
        row["time_unit"] = b[name].get("time_unit", "ns")
    if name in a:
        row["after"] = a[name]["real_time"]
        row["time_unit"] = a[name].get("time_unit", "ns")
    if name in b and name in a and a[name]["real_time"] > 0:
        row["speedup"] = round(
            b[name]["real_time"] / a[name]["real_time"], 3)
    summary[name] = row

doc = {"before": before, "after": after, "summary": summary}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_baseline.sh: merged before/after written to {out_path}")
for name, row in summary.items():
    if "speedup" in row:
        print(f"  {name}: {row['before']:.0f} -> {row['after']:.0f} "
              f"{row['time_unit']} ({row['speedup']}x)")
EOF

# Regression gate: any shared benchmark more than 10% slower than
# the BENCH_BEFORE capture fails the script.
python3 "$(dirname "$0")/bench_compare.py" "$BENCH_BEFORE" "$out"
