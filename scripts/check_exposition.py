#!/usr/bin/env python3
"""Lint a Prometheus text-format exposition (version 0.0.4).

Usage:
    scripts/check_exposition.py FILE [FILE...]

Validates the invariants the --metrics-out snapshots and the live
/metrics endpoint both promise:

  - metric and label names match the Prometheus charset
    ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*)
  - every family has exactly one # HELP and one # TYPE line, HELP
    before TYPE, both before any sample of the family
  - # TYPE values come from the known set
  - families appear in sorted order (the registry iterates a sorted
    map; an unsorted exposition means samples leaked out of
    renderExposition()/writeSnapshot())
  - sample names belong to the most recent family (plus the _bucket/
    _sum/_count children of histogram and summary families)
  - label blocks parse, with \\\\ \\" \\n escapes, and no series
    (name + label set) appears twice
  - sample values parse as floats (+Inf/-Inf/NaN allowed)

Exits nonzero listing every violation. Used by ctest over both the
file snapshot (metrics_* fixtures) and a live /metrics scrape saved
by check_telemetry (telemetry fixtures).
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(block, complain):
    """Parse the inside of a {...} label block into a list of
    (name, value) pairs, validating names and escape sequences."""
    labels = []
    i = 0
    while i < len(block):
        eq = block.find("=", i)
        if eq < 0:
            complain("label block %r: missing '='" % block)
            return labels
        name = block[i:eq]
        if not LABEL_NAME.match(name):
            complain("bad label name %r" % name)
        if eq + 1 >= len(block) or block[eq + 1] != '"':
            complain("label %r: value is not quoted" % name)
            return labels
        i = eq + 2
        value = []
        while i < len(block) and block[i] != '"':
            if block[i] == "\\":
                if i + 1 >= len(block):
                    complain("label %r: dangling escape" % name)
                    return labels
                if block[i + 1] not in ("\\", '"', "n"):
                    complain("label %r: unknown escape \\%s"
                             % (name, block[i + 1]))
                value.append(block[i:i + 2])
                i += 2
            else:
                value.append(block[i])
                i += 1
        if i >= len(block):
            complain("label %r: unterminated value" % name)
            return labels
        i += 1  # closing quote
        labels.append((name, "".join(value)))
        if i < len(block):
            if block[i] != ",":
                complain("label block %r: expected ',' after value"
                         % block)
                return labels
            i += 1
    return labels


def is_float(text):
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def lint(path):
    errors = []
    state = {"lineno": 0}

    def complain(msg):
        errors.append("%s:%d: %s" % (path, state["lineno"], msg))

    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return ["%s: %s" % (path, exc)]

    families = {}   # name -> {"help": bool, "type": str|None,
                    #          "samples": int}
    order = []      # family names in first-appearance order
    current = None  # family of the most recent HELP/TYPE
    seen_series = set()

    def family(name):
        if name not in families:
            families[name] = {"help": False, "type": None,
                              "samples": 0}
            order.append(name)
        return families[name]

    for lineno, line in enumerate(lines, 1):
        state["lineno"] = lineno
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6]
            rest = line[7:]
            name = rest.split(" ", 1)[0]
            if not METRIC_NAME.match(name):
                complain("bad metric name %r in # %s" % (name, kind))
                continue
            fam = family(name)
            current = name
            if fam["samples"]:
                complain("# %s %s appears after its samples"
                         % (kind, name))
            if kind == "HELP":
                if fam["help"]:
                    complain("duplicate # HELP for %s" % name)
                if fam["type"] is not None:
                    complain("# HELP %s after its # TYPE" % name)
                fam["help"] = True
            else:
                mtype = rest.split(" ", 1)[1].strip() \
                    if " " in rest else ""
                if mtype not in KNOWN_TYPES:
                    complain("unknown # TYPE %r for %s"
                             % (mtype, name))
                if fam["type"] is not None:
                    complain("duplicate # TYPE for %s" % name)
                fam["type"] = mtype
            continue
        if line.startswith("#"):
            continue  # free-form comment

        # A sample: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                         r"(\{(.*)\})?\s+(\S+)(\s+-?\d+)?\s*$",
                         line)
        if not match:
            complain("unparseable sample line %r" % line)
            continue
        name, _, labels_block, value, _ = match.groups()
        if current is None:
            complain("sample %s before any # HELP/# TYPE" % name)
        else:
            fam = families[current]
            allowed = {current}
            if fam["type"] in ("histogram", "summary"):
                allowed |= {current + "_bucket", current + "_sum",
                            current + "_count"}
                if fam["type"] == "summary":
                    allowed.discard(current + "_bucket")
            if name not in allowed:
                complain("sample %s does not belong to family %s"
                         % (name, current))
            else:
                fam["samples"] += 1
        labels = parse_labels(labels_block, complain) \
            if labels_block else []
        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            complain("duplicate series %s{%s}"
                     % (name, ",".join("%s=%s" % l for l in labels)))
        seen_series.add(series)
        if not is_float(value):
            complain("sample %s: value %r is not a float"
                     % (name, value))

    state["lineno"] = 0
    for name in order:
        fam = families[name]
        if not fam["help"]:
            complain("family %s has no # HELP" % name)
        if fam["type"] is None:
            complain("family %s has no # TYPE" % name)
        if not fam["samples"]:
            complain("family %s has no samples" % name)
    if order != sorted(order):
        complain("families are not sorted: %s"
                 % ", ".join(order))
    if not order:
        complain("no metric families found")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors = lint(path)
        for error in errors:
            print(error)
        if errors:
            failed = True
        else:
            print("%s: exposition ok" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
